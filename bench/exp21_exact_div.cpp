// EXP-21 -- the FULL DIV process solved exactly on tiny graphs (k^n-state
// absorption analysis), complementing EXP-16's two-opinion chain.
//
// (a) The [13] counterexample at exactly computable size: the blocked
//     {0,1,2} configuration on small paths has exact extreme-opinion win
//     probabilities bounded away from 0 that do NOT decay with n, while
//     the same counts on K_n decay visibly -- Theorem 2's dichotomy with
//     zero Monte-Carlo error.
// (b) The Lemma 3 martingale, exactly: max over ALL k^n initial states of
//     |E[winner] - average| is ~1e-12 for the edge process (plain average)
//     and the vertex process (degree-weighted average), on every graph
//     tried -- including strongly irregular ones.
#include <algorithm>
#include <cmath>
#include <iostream>
#include <numeric>

#include "common.hpp"
#include "exact/div_chain.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"

namespace {

using namespace divlib;

}  // namespace

int main() {
  print_banner(std::cout,
               "EXP-21a  Exact counterexample: blocked {0,1,2}, exact win "
               "probabilities (edge process)");
  Table path_table({"graph", "states", "P(0)", "P(1)", "P(2)",
                    "extremes win (exact)", "E[tau]"});
  struct Case {
    std::string name;
    Graph graph;
    std::vector<Opinion> start;
  };
  std::vector<Case> cases;
  cases.push_back({"path n=6 (blocked)", make_path(6), {0, 0, 1, 1, 2, 2}});
  cases.push_back({"path n=7 (blocked)", make_path(7), {0, 0, 1, 1, 1, 2, 2}});
  cases.push_back(
      {"cycle n=6 (blocked)", make_cycle(6), {0, 0, 1, 1, 2, 2}});
  cases.push_back({"complete n=6 (same counts)", make_complete(6),
                   {0, 0, 1, 1, 2, 2}});
  cases.push_back({"complete n=7 (same counts)", make_complete(7),
                   {0, 0, 1, 1, 1, 2, 2}});
  for (const auto& c : cases) {
    const DivChain chain(c.graph, 3, SelectionScheme::kEdge);
    const std::uint64_t state = chain.encode(c.start);
    const auto d = chain.absorption_distribution(state);
    path_table.row()
        .cell(c.name)
        .cell(chain.num_states())
        .cell(d[0], 6)
        .cell(d[1], 6)
        .cell(d[2], 6)
        .cell(d[0] + d[2], 6)
        .cell(chain.expected_consensus_time(state), 2);
  }
  path_table.print(std::cout);
  std::cout << "Expected shape: on paths/cycles the extremes hold a constant "
               "share (the\ncounterexample is exact, not a sampling artifact); "
               "on K_n with the same counts\nthe middle value dominates and "
               "the extreme share falls with n.\n";

  print_banner(std::cout,
               "EXP-21b  Lemma 3 exactly: max over ALL initial states of "
               "|E[winner] - average|");
  Table martingale_table({"graph", "scheme", "states checked",
                          "max |E[winner] - relevant average|"});
  const Graph graphs[] = {make_path(5), make_star(5), make_complete(5),
                          make_lollipop(3, 2)};
  for (const Graph& g : graphs) {
    for (const auto scheme : {SelectionScheme::kEdge, SelectionScheme::kVertex}) {
      const DivChain chain(g, 3, scheme);
      double worst = 0.0;
      for (std::uint64_t state = 0; state < chain.num_states(); ++state) {
        const auto opinions = chain.decode(state);
        double reference = 0.0;
        if (scheme == SelectionScheme::kEdge) {
          reference = std::accumulate(opinions.begin(), opinions.end(), 0.0) /
                      static_cast<double>(g.num_vertices());
        } else {
          for (VertexId v = 0; v < g.num_vertices(); ++v) {
            reference += g.stationary(v) * static_cast<double>(opinions[v]);
          }
        }
        worst = std::max(worst, std::abs(chain.expected_winner(state) - reference));
      }
      martingale_table.row()
          .cell(g.summary())
          .cell(std::string(to_string(scheme)))
          .cell(chain.num_states())
          .cell(worst, 14);
    }
  }
  martingale_table.print(std::cout);
  std::cout << "\nExpected shape: the last column is ~1e-12 in every row -- "
               "E[winner] equals the\n(plain | degree-weighted) initial "
               "average EXACTLY on arbitrary graphs, the\nLemma 3 martingale "
               "in closed form.\n";
  return 0;
}
