// EXP-15 -- fluid limit of DIV on K_n: the simulated opinion fractions
// x_i(t/n) track the mean-field ODE
//
//   dx_i/dtau = x_{i-1} G_{i-1} + x_{i+1} L_{i+1} - x_i (G_i + L_i)
//
// as n grows.  Reports, per checkpoint tau, the ODE prediction vs the
// replica-averaged simulation and the max absolute deviation (which must
// shrink with n -- the law-of-large-numbers shape).
#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/div_process.hpp"
#include "core/mean_field.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"
#include "stats/summary.hpp"

namespace {

using namespace divlib;

constexpr int kOpinions = 6;
const double kTaus[] = {1.0, 2.0, 4.0, 8.0};

// Replica-averaged fractions at each checkpoint for K_n.
std::vector<std::vector<double>> simulate(VertexId n, std::size_t replicas,
                                          std::uint64_t salt) {
  const Graph g = make_complete(n);
  const auto trajectories = run_replicas<std::vector<double>>(
      replicas,
      [&g, n](std::size_t, Rng& rng) {
        std::vector<VertexId> counts(kOpinions, n / kOpinions);
        counts[0] += n % kOpinions;
        OpinionState state(g, opinions_with_counts(n, 1, counts, rng));
        DivProcess process(g, SelectionScheme::kVertex);
        std::vector<double> flat;
        std::uint64_t step = 0;
        for (const double tau : kTaus) {
          const auto until = static_cast<std::uint64_t>(tau * n);
          for (; step < until; ++step) {
            process.step(state, rng);
          }
          for (Opinion i = 1; i <= kOpinions; ++i) {
            flat.push_back(static_cast<double>(state.count(i)) / n);
          }
        }
        return flat;
      },
      divbench::mc_options(salt));
  std::vector<std::vector<double>> averaged(std::size(kTaus),
                                            std::vector<double>(kOpinions, 0.0));
  for (const auto& flat : trajectories) {
    for (std::size_t c = 0; c < std::size(kTaus); ++c) {
      for (int i = 0; i < kOpinions; ++i) {
        averaged[c][i] += flat[c * kOpinions + i] / static_cast<double>(replicas);
      }
    }
  }
  return averaged;
}

}  // namespace

int main() {
  const int scale = divbench::scale();
  const std::size_t replicas = static_cast<std::size_t>(100 * scale);

  print_banner(std::cout, "EXP-15  Mean-field ODE vs simulated DIV on K_n "
                          "(k=6, uniform start, vertex process)");
  std::cout << "replicas per n: " << replicas << "\n";

  // ODE reference.
  std::vector<std::vector<double>> predicted;
  {
    MeanFieldDiv flow(std::vector<double>(kOpinions, 1.0 / kOpinions));
    double current = 0.0;
    for (const double tau : kTaus) {
      flow.integrate(tau - current);
      current = tau;
      predicted.push_back(flow.fractions());
    }
  }

  Table table({"tau", "x (ODE)", "x (K_256)", "max|dev| n=256", "max|dev| n=1024"});
  const auto sim_small = simulate(256, replicas, 0xf1);
  const auto sim_large = simulate(1024, replicas, 0xf2);
  std::vector<double> small_devs;
  std::vector<double> large_devs;
  for (std::size_t c = 0; c < std::size(kTaus); ++c) {
    const auto render = [](const std::vector<double>& x) {
      std::string text = "[";
      for (std::size_t i = 0; i < x.size(); ++i) {
        text += (i > 0 ? " " : "") + format_double(x[i], 3);
      }
      return text + "]";
    };
    double small_dev = 0.0;
    double large_dev = 0.0;
    for (int i = 0; i < kOpinions; ++i) {
      small_dev = std::max(small_dev, std::abs(sim_small[c][i] - predicted[c][i]));
      large_dev = std::max(large_dev, std::abs(sim_large[c][i] - predicted[c][i]));
    }
    small_devs.push_back(small_dev);
    large_devs.push_back(large_dev);
    table.row()
        .cell(kTaus[c], 1)
        .cell(render(predicted[c]))
        .cell(render(sim_small[c]))
        .cell(small_dev, 4)
        .cell(large_dev, 4);
  }
  table.print(std::cout);
  const double worst_small = *std::max_element(small_devs.begin(), small_devs.end());
  const double worst_large = *std::max_element(large_devs.begin(), large_devs.end());
  std::cout << "worst deviation: n=256 -> " << format_double(worst_small, 4)
            << ", n=1024 -> " << format_double(worst_large, 4) << "\n"
            << "\nExpected shape: simulated fractions track the ODE at every "
               "checkpoint, and the\nworst deviation shrinks as n grows "
               "(fluid-limit concentration).\n";
  return 0;
}
