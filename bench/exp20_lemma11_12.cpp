// EXP-20 -- Lemmas 11 and 12: the linear-voting time bound that powers the
// stage analysis of Theorem 1.
//
// Lemma 11 ([14]): two-opinion pull voting started from a set B(0) of small
// stationary mass reaches consensus within
//     T_p * sqrt(min(pi(B), pi(B^C))),   T_p = 64 n / (sqrt(2)(1-lambda) pi_min),
// with probability >= 1/2.
//
// Lemma 12 transfers the same bound to DIV via the Lemma 13 coupling: one
// of the ORIGINAL extreme opinions vanishes within the same deadline with
// probability >= 1/2.
//
// We sweep the initial extreme mass eps and report P[tau <= deadline] for
// both processes -- every row must clear 1/2 (the bound is loose; the
// measured probabilities are near 1) -- plus the median tau as a fraction
// of the deadline.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/div_process.hpp"
#include "core/pull_voting.hpp"
#include "core/theory.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"
#include "spectral/lambda.hpp"
#include "stats/ecdf.hpp"

namespace {

using namespace divlib;

}  // namespace

int main() {
  const int scale = divbench::scale();
  const std::size_t replicas = static_cast<std::size_t>(400 * scale);

  const VertexId n = 128;
  const Graph g = make_complete(n);
  const double lambda = second_eigenvalue(g);
  const double pi_min = g.min_stationary();
  const double t_p = theory::stage_time_Tp(n, lambda, pi_min);

  print_banner(std::cout,
               "EXP-20  Lemmas 11/12: elimination within T_p sqrt(eps), "
               "T_p = 64n/(sqrt(2)(1-lambda)pi_min)");
  std::cout << "graph: " << g.summary() << ", lambda = " << format_double(lambda, 4)
            << ", T_p = " << format_double(t_p, 0)
            << ", replicas per cell: " << replicas << "\n";

  Table table({"eps = pi(B(0))", "process", "deadline T_p sqrt(eps)",
               "P[tau <= deadline]", "median tau / deadline", "paper bound"});
  std::uint64_t salt = 0x200;
  for (const double eps : {0.25, 0.125, 0.0625, 0.03125}) {
    const auto minority = static_cast<VertexId>(eps * n);
    const double deadline = t_p * std::sqrt(eps);

    // Lemma 11: two-opinion pull voting, B(0) = `minority` vertices.
    {
      const auto taus = run_replicas<double>(
          replicas,
          [&g, n, minority](std::size_t, Rng& rng) {
            OpinionState state(g, two_value_opinions(n, 0, 1, minority, rng));
            PullVoting process(g, SelectionScheme::kVertex);
            std::uint64_t step = 0;
            while (!state.is_consensus() && step < 100'000'000) {
              process.step(state, rng);
              ++step;
            }
            return static_cast<double>(step);
          },
          divbench::mc_options(salt++));
      const Ecdf ecdf(taus);
      table.row()
          .cell(eps, 5)
          .cell("pull (Lemma 11)")
          .cell(deadline, 0)
          .cell(1.0 - ecdf.tail_at_least(deadline + 0.5), 4)
          .cell(ecdf.quantile(0.5) / deadline, 4)
          .cell(">= 0.5");
    }

    // Lemma 12: DIV with opinions {1..4}; the minority holds the extreme 1,
    // the rest splits over {2,3,4}.  tau = first time an ORIGINAL extreme
    // (1 or 4) has vanished.
    {
      const auto taus = run_replicas<double>(
          replicas,
          [&g, n, minority](std::size_t, Rng& rng) {
            const VertexId rest = n - minority;
            OpinionState state(
                g, opinions_with_counts(
                       n, 1, {minority, rest / 3, rest / 3, rest - 2 * (rest / 3)},
                       rng));
            DivProcess process(g, SelectionScheme::kVertex);
            std::uint64_t step = 0;
            while (state.count(1) > 0 && state.count(4) > 0 &&
                   step < 100'000'000) {
              process.step(state, rng);
              ++step;
            }
            return static_cast<double>(step);
          },
          divbench::mc_options(salt++));
      const Ecdf ecdf(taus);
      table.row()
          .cell(eps, 5)
          .cell("DIV (Lemma 12)")
          .cell(deadline, 0)
          .cell(1.0 - ecdf.tail_at_least(deadline + 0.5), 4)
          .cell(ecdf.quantile(0.5) / deadline, 4)
          .cell(">= 0.5");
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every P[tau <= deadline] >= 0.5 (in fact "
               "close to 1: the\nconstant 64 is generous), and the median tau "
               "sits at a small fraction of the\ndeadline that shrinks with "
               "eps -- the sqrt(eps) scaling has slack exactly as\na "
               "probability-1/2 bound should.\n";
  return 0;
}
