// EXP-13 -- Lemma 9 (the expander mixing lemma), the analytic engine behind
// Lemma 10: for all S, U
//
//   |Q(S,U) - pi(S)pi(U)| <= lambda sqrt(pi(S)pi(S^C)pi(U)pi(U^C)).
//
// For each graph we evaluate the ratio LHS/RHS exactly over many random set
// pairs plus designed adversarial cuts (BFS balls, bottleneck halves) and
// report the maximum -- it must never exceed 1, and bottleneck graphs should
// come close to saturating it.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "io/table.hpp"
#include "spectral/lambda.hpp"

namespace {

using namespace divlib;

struct RatioScan {
  double max_ratio = 0.0;
  int pairs = 0;
};

RatioScan scan(const Graph& g, double lambda, Rng& rng, int random_pairs) {
  RatioScan result;
  const VertexId n = g.num_vertices();
  const auto consider = [&](const std::vector<bool>& s,
                            const std::vector<bool>& u) {
    result.max_ratio = std::max(result.max_ratio, mixing_lemma_ratio(g, s, u, lambda));
    ++result.pairs;
  };
  // Random pairs at several densities.
  for (int i = 0; i < random_pairs; ++i) {
    const double p_s = rng.uniform_real(0.1, 0.9);
    const double p_u = rng.uniform_real(0.1, 0.9);
    std::vector<bool> s(n);
    std::vector<bool> u(n);
    for (VertexId v = 0; v < n; ++v) {
      s[v] = rng.bernoulli(p_s);
      u[v] = rng.bernoulli(p_u);
    }
    consider(s, u);
  }
  // BFS balls against their complements (bottleneck-style cuts).
  const auto distance = bfs_distances(g, 0);
  std::uint32_t radius = 0;
  for (const std::uint32_t d : distance) {
    if (d != kUnreachable) {
      radius = std::max(radius, d);
    }
  }
  for (std::uint32_t r = 0; r < radius; ++r) {
    std::vector<bool> ball(n, false);
    std::vector<bool> complement(n, false);
    for (VertexId v = 0; v < n; ++v) {
      const bool inside = distance[v] != kUnreachable && distance[v] <= r;
      ball[v] = inside;
      complement[v] = !inside;
    }
    consider(ball, ball);
    consider(ball, complement);
  }
  return result;
}

}  // namespace

int main() {
  const int scale = divbench::scale();
  const int random_pairs = 300 * scale;
  Rng graph_rng(0xed);

  print_banner(std::cout,
               "EXP-13  Lemma 9 (expander mixing lemma): max |Q(S,U) - "
               "pi(S)pi(U)| / (lambda sqrt(...))");
  std::cout << "random (S, U) pairs per graph: " << random_pairs
            << " plus BFS-ball cuts\n";

  struct Case {
    std::string name;
    Graph graph;
  };
  std::vector<Case> cases;
  cases.push_back({"complete n=128", make_complete(128)});
  cases.push_back({"hypercube d=7", make_hypercube(7)});
  cases.push_back({"random-regular n=128 d=8",
                   make_connected_random_regular(128, 8, graph_rng)});
  cases.push_back({"gnp n=128 p=0.15", make_connected_gnp(128, 0.15, graph_rng)});
  cases.push_back({"barbell 32+32", make_barbell(32)});
  cases.push_back({"cycle n=129", make_cycle(129)});

  Table table({"graph", "lambda", "max ratio (<= 1)", "pairs tested", "holds"});
  Rng set_rng(0x13);
  for (const auto& graph_case : cases) {
    const double lambda = second_eigenvalue(graph_case.graph);
    const RatioScan result =
        scan(graph_case.graph, lambda, set_rng, random_pairs);
    table.row()
        .cell(graph_case.name)
        .cell(lambda, 5)
        .cell(result.max_ratio, 5)
        .cell(result.pairs)
        .cell(result.max_ratio <= 1.0 + 1e-9 ? "yes" : "NO");
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: every ratio <= 1 (the lemma is a theorem); "
               "bottleneck cuts\n(barbell halves, cycle arcs) approach 1, "
               "random sets on good expanders sit\nwell below it.\n";
  return 0;
}
