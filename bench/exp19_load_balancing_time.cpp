// EXP-19 -- the baseline's own law: Berenbrink et al. [5] prove that the
// asynchronous edge load-balancing process reaches a state of at most three
// consecutive values around the average within O(n log n + n log k) steps
// w.h.p. (complete-graph-style expanders).
//
// We verify the shape on K_n: E[T_3] / (n log n + n log k) stays bounded
// (roughly constant) across a joint sweep of n and k.
#include <cmath>
#include <iostream>

#include "common.hpp"
#include "core/load_balancing.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "io/table.hpp"
#include "stats/summary.hpp"

namespace {

using namespace divlib;

double steps_to_three_values(const Graph& g, Opinion k, Rng& rng) {
  OpinionState state(g, uniform_random_opinions(g.num_vertices(), 1, k, rng));
  LoadBalancing process(g);
  std::uint64_t step = 0;
  const std::uint64_t cap =
      static_cast<std::uint64_t>(g.num_vertices()) * g.num_vertices() * 100;
  while (state.max_active() - state.min_active() > 2 && step < cap) {
    process.step(state, rng);
    ++step;
  }
  return static_cast<double>(step);
}

}  // namespace

int main() {
  const int scale = divbench::scale();
  const std::size_t replicas = static_cast<std::size_t>(100 * scale);

  print_banner(std::cout,
               "EXP-19  Load balancing [5]: E[steps to <= 3 consecutive "
               "values] vs n log n + n log k");
  std::cout << "replicas per cell: " << replicas << "\n";

  Table table({"n", "k", "E[T_3]", "stderr", "n log n + n log k",
               "ratio (should be ~constant)"});
  std::uint64_t salt = 0x190;
  for (const VertexId n : {64u, 128u, 256u, 512u}) {
    const Graph g = make_complete(n);
    for (const Opinion k : {8, 64}) {
      const auto times = run_replicas<double>(
          replicas,
          [&g, k](std::size_t, Rng& rng) {
            return steps_to_three_values(g, k, rng);
          },
          divbench::mc_options(salt++));
      const Summary summary = Summary::of(times);
      const double reference =
          static_cast<double>(n) * std::log(static_cast<double>(n)) +
          static_cast<double>(n) * std::log(static_cast<double>(k));
      table.row()
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<int>(k))
          .cell(summary.mean(), 1)
          .cell(summary.stderror(), 1)
          .cell(reference, 1)
          .cell(summary.mean() / reference, 4);
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: the last column stays within a narrow "
               "constant band as n\ngrows 8x and k grows 8x -- the "
               "O(n log n + n log k) law of [5].\n";
  return 0;
}
