// When does DIV find the average?  The paper's answer: when the graph is an
// expander (lambda * k = o(1)).  This example contrasts a random regular
// expander with the path graph counterexample of [13]: identical opinion
// *frequencies*, drastically different outcomes.
//
//   $ ./expander_vs_path [n] [runs] [seed]
#include <cstdlib>
#include <iostream>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "spectral/lambda.hpp"
#include "stats/histogram.hpp"

namespace {

using namespace divlib;

void report(const char* name, const Graph& graph,
            const std::vector<Opinion>& opinions, int runs, Rng& rng) {
  const double lambda = second_eigenvalue(graph);
  const OpinionState initial(graph, opinions);
  std::cout << name << ": " << graph.summary() << ", lambda = " << lambda
            << ", lambda*k = " << lambda * 3 << "\n"
            << "  initial counts 0:" << initial.count(0)
            << " 1:" << initial.count(1) << " 2:" << initial.count(2)
            << ", average = " << initial.average() << "\n";

  IntCounter winners;
  for (int repetition = 0; repetition < runs; ++repetition) {
    OpinionState state(graph, opinions);
    DivProcess process(graph, SelectionScheme::kEdge);
    RunOptions options;
    options.max_steps = static_cast<std::uint64_t>(graph.num_vertices()) *
                        graph.num_vertices() * graph.num_vertices() * 50;
    const RunResult result = run(process, state, rng, options);
    winners.add(result.winner.value_or(-1));
  }
  std::cout << "  winners over " << runs << " runs: ";
  for (const auto& [value, count] : winners.counts()) {
    std::cout << value << " x" << count << "  ";
  }
  std::cout << "\n  P(average wins) = " << winners.fraction(1) << "\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 96;
  const int runs = argc > 2 ? std::atoi(argv[2]) : 200;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;
  Rng rng(seed);

  const VertexId third = n / 3;
  // Blocked opinions 0|1|2 along the path; the same counts shuffled on the
  // expander.
  const auto blocked = block_opinions(third * 3, 0, {third, third, third});
  auto shuffled = blocked;
  rng.shuffle(shuffled);

  std::cout << "Discrete incremental voting with opinions {0,1,2}; the "
               "average is exactly 1.\n\n";

  const Graph expander = make_connected_random_regular(third * 3, 16, rng);
  report("random 16-regular expander", expander, shuffled, runs, rng);

  const Graph path = make_path(third * 3);
  report("path graph (counterexample of [13])", path, blocked, runs, rng);

  std::cout << "Takeaway: with lambda*k = o(1) the average wins essentially "
               "always; on the\npath (lambda ~ 1) the extreme opinions 0 and 2 "
               "win with constant probability.\n";
  return 0;
}
