// Distributed averaging of integer sensor readings -- the paper's "concrete
// application": computing the integer average of integer weights held at the
// vertices of a network using nothing but single-writer pull interactions.
//
// A fleet of temperature sensors is connected in an ad-hoc G(n,p) mesh; each
// holds an integer reading.  DIV drives the network to a single value equal
// to the rounded network-wide average, and we compare against the edge
// load-balancing baseline which needs coordinated pairwise updates and stops
// at a mixture.
//
//   $ ./sensor_average [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "core/div_process.hpp"
#include "core/load_balancing.hpp"
#include "engine/engine.hpp"
#include "graph/random_graphs.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  using namespace divlib;

  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 400;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;
  Rng rng(seed);

  // Ad-hoc mesh: G(n, p) just above the connectivity threshold times 4.
  const double p = 8.0 * std::log(static_cast<double>(n)) / n;
  const Graph mesh = make_connected_gnp(n, p, rng);
  std::cout << "sensor mesh: " << mesh.summary() << "\n";

  // Temperature readings: integers around 21 C with a warm cluster.
  std::vector<Opinion> readings(n);
  for (VertexId v = 0; v < n; ++v) {
    readings[v] = 19 + static_cast<Opinion>(rng.uniform_below(5));  // 19..23
  }
  for (VertexId v = 0; v < n / 10; ++v) {
    readings[v] = 28;  // a hot corner of the building
  }

  OpinionState state(mesh, readings);
  const double true_average = state.average();
  std::cout << "true average reading = " << true_average << " C over " << n
            << " sensors, readings in [" << state.min_active() << ", "
            << state.max_active() << "]\n";

  // --- DIV: single-writer gossip ------------------------------------------
  {
    OpinionState div_state(mesh, readings);
    DivProcess process(mesh, SelectionScheme::kEdge);
    RunOptions options;
    options.max_steps = static_cast<std::uint64_t>(n) * n * 100;
    const RunResult result = run(process, div_state, rng, options);
    if (result.completed) {
      std::cout << "\nDIV (single-writer): every sensor now reports "
                << *result.winner << " C after " << result.steps
                << " interactions\n";
      std::cout << "  error vs true average: "
                << std::abs(static_cast<double>(*result.winner) - true_average)
                << " C (rounded average is "
                << (std::abs(std::round(true_average) - true_average) <= 0.5
                        ? "the best any integer consensus can do"
                        : "off")
                << ")\n";
    } else {
      std::cout << "DIV did not converge within the cap\n";
    }
  }

  // --- Load balancing: coordinated pairwise averaging ----------------------
  {
    OpinionState lb_state(mesh, readings);
    LoadBalancing process(mesh);
    RunOptions options;
    options.stop = StopKind::kTwoAdjacent;
    options.max_steps = static_cast<std::uint64_t>(n) * n * 100;
    const RunResult result = run(process, lb_state, rng, options);
    std::cout << "\nload balancing (two-writer baseline): after "
              << result.steps << " interactions the sensors hold values in ["
              << lb_state.min_active() << ", " << lb_state.max_active()
              << "]\n  exact sum conserved (average still " << lb_state.average()
              << " C), but " << (lb_state.is_consensus() ? "consensus reached"
                                                         : "no single value")
              << ": " << lb_state.count(lb_state.min_active()) << " sensors at "
              << lb_state.min_active() << ", "
              << lb_state.count(lb_state.max_active()) << " at "
              << lb_state.max_active() << "\n";
  }

  std::cout << "\nTakeaway: DIV reaches one agreed integer (the rounded "
               "average) using only\none-sided updates; load balancing "
               "conserves the sum exactly but needs\ncoordinated pairwise "
               "writes and generally cannot agree on a single value.\n";
  return 0;
}
