// Quickstart: run discrete incremental voting on a random regular expander
// and watch it converge to the rounded initial average.
//
//   $ ./quickstart [n] [k] [seed]
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/div_process.hpp"
#include "core/theory.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "graph/random_graphs.hpp"
#include "spectral/lambda.hpp"

int main(int argc, char** argv) {
  using namespace divlib;

  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 512;
  const Opinion k = argc > 2 ? static_cast<Opinion>(std::atoi(argv[2])) : 7;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 4;

  Rng rng(seed);

  // 1. Build a graph.  Random 16-regular graphs are expanders w.h.p.
  const Graph graph = make_connected_random_regular(n, 16, rng);
  std::cout << "graph: " << graph.summary() << "\n";

  // 2. Check the paper's conditions (Theorem 2 applicability).
  const ExpanderCheck check = check_theorem_conditions(graph, k);
  std::cout << "lambda = " << check.lambda << ", lambda*k = "
            << check.lambda_times_k
            << (check.applicable ? "  (expander conditions hold)"
                                 : "  (outside the proven regime; the mean "
                                   "usually still wins in practice)")
            << "\n";

  // 3. Give every vertex a random opinion in {1..k}.
  OpinionState state(graph, uniform_random_opinions(n, 1, k, rng));
  const double c = state.average();
  const auto prediction = theory::win_distribution(c);
  std::cout << "initial average c = " << c << "; Theorem 2 predicts winner "
            << prediction.low << " w.p. " << prediction.p_low << " or "
            << prediction.high << " w.p. " << prediction.p_high << "\n";

  // 4. Run DIV (edge process) to consensus.
  DivProcess process(graph, SelectionScheme::kEdge);
  RunOptions options;
  options.max_steps = static_cast<std::uint64_t>(n) * n * 100;
  options.trace_stride = static_cast<std::uint64_t>(n);
  const RunResult result = run(process, state, rng, options);

  if (!result.completed) {
    std::cout << "did not converge within the step cap\n";
    return 1;
  }
  std::cout << "consensus on opinion " << *result.winner << " after "
            << result.steps << " steps (" << result.steps / n
            << " steps per vertex)\n";

  // 5. Show the collapse of the opinion range over time.
  std::cout << "\nrange collapse (sampled every " << n << " steps):\n";
  std::uint64_t printed = 0;
  Opinion last_lo = -1;
  Opinion last_hi = -1;
  for (const TraceSample& sample : result.trace.samples()) {
    if (sample.min_active == last_lo && sample.max_active == last_hi) {
      continue;  // only print when the active range changes
    }
    last_lo = sample.min_active;
    last_hi = sample.max_active;
    std::cout << "  step " << sample.step << ": opinions in [" << sample.min_active
              << ", " << sample.max_active << "], S(t) = " << sample.sum << "\n";
    if (++printed > 30) {
      std::cout << "  ...\n";
      break;
    }
  }
  return 0;
}
