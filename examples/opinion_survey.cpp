// Opinion dynamics on a social network: the paper's Likert-scale motivation.
//
// Vertices hold opinions 1 ('disagree strongly') .. 5 ('agree strongly') on a
// Watts-Strogatz small-world network.  We run the three dynamics the paper
// situates itself among -- pull voting (mode), median voting (median), and
// discrete incremental voting (mean) -- from the same initial survey and
// report where each lands.
//
//   $ ./opinion_survey [n] [seed]
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/div_process.hpp"
#include "core/median_voting.hpp"
#include "core/pull_voting.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "graph/random_graphs.hpp"
#include "stats/histogram.hpp"

int main(int argc, char** argv) {
  using namespace divlib;

  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 500;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;
  Rng rng(seed);

  const Graph network = make_watts_strogatz(n, 5, 0.2, rng);
  std::cout << "social network (Watts-Strogatz): " << network.summary() << "\n";

  // Polarized survey: many strong disagreers, a moderate middle, and a small
  // enthusiastic group -- mode, median, and mean all differ.
  //   40% -> 1, 15% -> 2, 15% -> 3, 10% -> 4, 20% -> 5
  std::vector<VertexId> counts{
      static_cast<VertexId>(n * 40 / 100), static_cast<VertexId>(n * 15 / 100),
      static_cast<VertexId>(n * 15 / 100), static_cast<VertexId>(n * 10 / 100),
      0};
  counts[4] = n - counts[0] - counts[1] - counts[2] - counts[3];
  const auto survey = opinions_with_counts(n, 1, counts, rng);

  {
    const OpinionState initial(network, survey);
    std::cout << "initial survey: ";
    for (Opinion v = 1; v <= 5; ++v) {
      std::cout << v << ":" << initial.count(v) << "  ";
    }
    std::cout << "\n  mode = 1, median = 2, mean = " << initial.average()
              << "\n\n";
  }

  struct Dynamics {
    const char* name;
    const char* statistic;
    std::unique_ptr<Process> process;
  };
  Dynamics dynamics[] = {
      {"pull voting  ", "mode-biased ",
       std::make_unique<PullVoting>(network, SelectionScheme::kEdge)},
      {"median voting", "median      ",
       std::make_unique<MedianVoting>(network)},
      {"DIV          ", "rounded mean",
       std::make_unique<DivProcess>(network, SelectionScheme::kEdge)},
  };

  for (auto& dyn : dynamics) {
    // A few repetitions to show the distribution of outcomes.
    IntCounter winners;
    for (int repetition = 0; repetition < 25; ++repetition) {
      OpinionState state(network, survey);
      RunOptions options;
      options.max_steps = static_cast<std::uint64_t>(n) * n * 50;
      const RunResult result = run(*dyn.process, state, rng, options);
      winners.add(result.winner.value_or(-1));
    }
    std::cout << dyn.name << " (targets " << dyn.statistic << "): winners over "
              << winners.total() << " runs -> ";
    for (const auto& [value, count] : winners.counts()) {
      std::cout << value << " x" << count << "  ";
    }
    std::cout << "\n";
  }

  std::cout << "\nTakeaway: from one survey, the three dynamics aggregate to "
               "three different\nsocial choices -- the paper's mode/median/"
               "mean trichotomy in action.\n";
  return 0;
}
