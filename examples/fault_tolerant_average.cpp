// Fault-tolerant distributed averaging -- the introduction's claim that
// voting dynamics are "simple, fault-tolerant, and easy to implement" made
// concrete.  A sensor mesh runs DIV under two injected failure modes:
//
//   1. lossy links: half of all gossip interactions are dropped;
//   2. a stuck sensor: one node crashes and keeps answering pulls with a
//      frozen (wrong) reading.
//
//   $ ./fault_tolerant_average [n] [seed]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "core/div_process.hpp"
#include "core/faulty_process.hpp"
#include "engine/engine.hpp"
#include "graph/random_graphs.hpp"

int main(int argc, char** argv) {
  using namespace divlib;

  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 300;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 11;
  Rng rng(seed);

  const Graph mesh = make_connected_random_regular(n, 12, rng);
  std::cout << "sensor mesh: " << mesh.summary() << "\n";

  std::vector<Opinion> readings(n);
  for (VertexId v = 0; v < n; ++v) {
    readings[v] = 20 + static_cast<Opinion>(rng.uniform_below(7));  // 20..26
  }
  {
    const OpinionState initial(mesh, readings);
    std::cout << "true average reading: " << initial.average() << " C\n\n";
  }

  const auto run_case = [&](const char* label, double drop_rate,
                            std::vector<VertexId> crashed,
                            std::uint64_t max_steps) {
    OpinionState state(mesh, readings);
    FaultyProcess process(
        std::make_unique<DivProcess>(mesh, SelectionScheme::kEdge), drop_rate,
        std::move(crashed));
    RunOptions options;
    options.max_steps = max_steps;
    const RunResult result = run(process, state, rng, options);
    std::cout << label << ":\n";
    if (result.completed) {
      std::cout << "  consensus on " << *result.winner << " C after "
                << result.steps << " ticks";
      if (process.dropped() > 0) {
        std::cout << " (" << process.dropped() << " interactions lost)";
      }
      std::cout << "\n";
    } else {
      std::cout << "  after " << result.steps
                << " ticks (budget reached): readings in ["
                << state.min_active() << ", " << state.max_active()
                << "], network average " << state.average() << " C\n";
    }
    return result;
  };

  const std::uint64_t unlimited = static_cast<std::uint64_t>(n) * n * 1000;
  const RunResult healthy = run_case("healthy network", 0.0, {}, unlimited);
  run_case("50% message loss", 0.5, {}, unlimited);

  // Crash sensor 0 at a *wrong* frozen value far from the average, and read
  // the network out at a realistic budget (10x the healthy consensus time).
  readings[0] = 99;
  run_case("one sensor stuck at 99 C, readout at a 10x budget", 0.0, {0},
           healthy.steps * 10);
  run_case("one sensor stuck at 99 C, unlimited budget", 0.0, {0}, unlimited);

  std::cout << "\nTakeaway: message loss is benign -- same answer, time "
               "scaled by 1/(1-p).\nA stuck extremist is the serious fault: "
               "within a normal time budget the live\nsensors still agree "
               "near the true average, but on unbounded horizons the\n"
               "frozen node drags the entire network to ITS value -- the "
               "only absorbing state\nis agreement with the zealot.  "
               "Deployments must bound the horizon or evict\nstuck nodes.\n";
  return 0;
}
