// io/wire: CRC-framed pipe protocol used between the fleet parent and its
// worker processes.  The tests drive real pipes -- the framing exists to
// survive exactly the partial-write/garbage conditions only a real fd shows.
#include "io/wire.hpp"

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>

#include <fcntl.h>
#include <unistd.h>

#include "io/crc32.hpp"

namespace divlib {
namespace {

struct Pipe {
  int read_fd = -1;
  int write_fd = -1;
  Pipe() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::pipe(fds), 0);
    read_fd = fds[0];
    write_fd = fds[1];
  }
  ~Pipe() {
    close_read();
    close_write();
  }
  void close_read() {
    if (read_fd >= 0) {
      ::close(read_fd);
      read_fd = -1;
    }
  }
  void close_write() {
    if (write_fd >= 0) {
      ::close(write_fd);
      write_fd = -1;
    }
  }
  void make_read_nonblocking() const {
    ::fcntl(read_fd, F_SETFL, ::fcntl(read_fd, F_GETFL) | O_NONBLOCK);
  }
};

void put_u32_le(std::string& out, std::uint32_t value) {
  out.push_back(static_cast<char>(value & 0xFF));
  out.push_back(static_cast<char>((value >> 8) & 0xFF));
  out.push_back(static_cast<char>((value >> 16) & 0xFF));
  out.push_back(static_cast<char>((value >> 24) & 0xFF));
}

std::string raw_frame(std::string_view payload, std::uint32_t crc) {
  std::string bytes;
  put_u32_le(bytes, static_cast<std::uint32_t>(payload.size()));
  put_u32_le(bytes, crc);
  bytes.append(payload);
  return bytes;
}

void write_raw(int fd, std::string_view bytes) {
  ASSERT_EQ(::write(fd, bytes.data(), bytes.size()),
            static_cast<ssize_t>(bytes.size()));
}

TEST(WireTest, FrameRoundTripsOverPipe) {
  Pipe pipe;
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "work 7 3"));
  const auto got = wire_read_frame(pipe.read_fd);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "work 7 3");
}

TEST(WireTest, EmptyPayloadRoundTrips) {
  Pipe pipe;
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, ""));
  const auto got = wire_read_frame(pipe.read_fd);
  ASSERT_TRUE(got.has_value());
  EXPECT_TRUE(got->empty());
}

TEST(WireTest, BinaryPayloadSurvivesIntact) {
  Pipe pipe;
  std::string payload;
  for (int byte = 0; byte < 256; ++byte) {
    payload.push_back(static_cast<char>(byte));
  }
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, payload));
  const auto got = wire_read_frame(pipe.read_fd);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(WireTest, CleanEofBetweenFramesIsNullopt) {
  Pipe pipe;
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "one"));
  pipe.close_write();
  EXPECT_EQ(wire_read_frame(pipe.read_fd), "one");
  EXPECT_FALSE(wire_read_frame(pipe.read_fd).has_value());
}

TEST(WireTest, EofInsideHeaderThrows) {
  Pipe pipe;
  write_raw(pipe.write_fd, "ab");  // 2 of 8 header bytes
  pipe.close_write();
  EXPECT_THROW(wire_read_frame(pipe.read_fd), std::runtime_error);
}

TEST(WireTest, EofInsideBodyThrows) {
  Pipe pipe;
  const std::string frame = raw_frame("payload", crc32_of("payload"));
  write_raw(pipe.write_fd, frame.substr(0, frame.size() - 2));
  pipe.close_write();
  EXPECT_THROW(wire_read_frame(pipe.read_fd), std::runtime_error);
}

TEST(WireTest, CrcMismatchThrows) {
  Pipe pipe;
  write_raw(pipe.write_fd, raw_frame("payload", crc32_of("payload") ^ 1));
  EXPECT_THROW(wire_read_frame(pipe.read_fd), std::runtime_error);
}

TEST(WireTest, OversizedLengthPrefixThrows) {
  Pipe pipe;
  std::string bytes;
  put_u32_le(bytes, kMaxWireFrame + 1);
  put_u32_le(bytes, 0);
  write_raw(pipe.write_fd, bytes);
  EXPECT_THROW(wire_read_frame(pipe.read_fd), std::runtime_error);
}

TEST(WireTest, WriteRejectsOversizedPayload) {
  Pipe pipe;
  // The guard runs before any byte hits the pipe, so nothing blocks even
  // though the payload dwarfs the pipe buffer.
  std::string big(kMaxWireFrame + 1, 'x');
  EXPECT_FALSE(wire_write_frame(pipe.write_fd, big));
}

TEST(WireTest, WriteToClosedPeerFails) {
  Pipe pipe;
  pipe.close_read();
  // SIGPIPE would kill the test; the wire contract requires callers ignore
  // it, which the fleet does process-wide.
  ::signal(SIGPIPE, SIG_IGN);
  EXPECT_FALSE(wire_write_frame(pipe.write_fd, "into the void"));
  ::signal(SIGPIPE, SIG_DFL);
}

TEST(WireTest, LargeFrameRoundTripsPastPipeCapacity) {
  // 1 MiB >> the 64 KiB pipe buffer: forces short writes on the writer side
  // and many partial reads on the reader side.
  Pipe pipe;
  std::string payload;
  payload.reserve(1 << 20);
  for (std::size_t i = 0; i < (1 << 20); ++i) {
    payload.push_back(static_cast<char>('a' + (i * 31) % 26));
  }
  std::thread writer(
      [&] { EXPECT_TRUE(wire_write_frame(pipe.write_fd, payload)); });
  const auto got = wire_read_frame(pipe.read_fd);
  writer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(WireReaderTest, PopsFramesInOrder) {
  Pipe pipe;
  pipe.make_read_nonblocking();
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "beat"));
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "ok 1 0 result"));
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "beat"));
  WireReader reader(pipe.read_fd);
  reader.pump();
  std::string frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame, "beat");
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame, "ok 1 0 result");
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame, "beat");
  EXPECT_FALSE(reader.next(frame));
  EXPECT_FALSE(reader.closed());
  EXPECT_FALSE(reader.corrupt());
}

TEST(WireReaderTest, ByteDribbleAssemblesOneFrame) {
  Pipe pipe;
  pipe.make_read_nonblocking();
  WireReader reader(pipe.read_fd);
  const std::string bytes = raw_frame("dribble", crc32_of("dribble"));
  std::string frame;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_FALSE(reader.next(frame)) << "frame complete after " << i
                                     << "/" << bytes.size() << " bytes";
    write_raw(pipe.write_fd, bytes.substr(i, 1));
    reader.pump();
  }
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame, "dribble");
}

TEST(WireReaderTest, EofIsStickyAndBufferedFramesStillDeliver) {
  Pipe pipe;
  pipe.make_read_nonblocking();
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "last words"));
  pipe.close_write();
  WireReader reader(pipe.read_fd);
  reader.pump();
  EXPECT_TRUE(reader.closed());
  std::string frame;
  ASSERT_TRUE(reader.next(frame));
  EXPECT_EQ(frame, "last words");
  EXPECT_FALSE(reader.next(frame));
}

TEST(WireReaderTest, CorruptCrcPoisonsTheStream) {
  Pipe pipe;
  pipe.make_read_nonblocking();
  write_raw(pipe.write_fd, raw_frame("bad", crc32_of("bad") ^ 0xdead));
  ASSERT_TRUE(wire_write_frame(pipe.write_fd, "good"));
  WireReader reader(pipe.read_fd);
  reader.pump();
  std::string frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
  // Corruption is sticky: even intact later frames are never surfaced,
  // because nothing downstream of a CRC failure can be trusted.
  EXPECT_FALSE(reader.next(frame));
}

TEST(WireReaderTest, BogusLengthPoisonsTheStream) {
  Pipe pipe;
  pipe.make_read_nonblocking();
  std::string bytes;
  put_u32_le(bytes, 0xFFFFFFFFu);
  put_u32_le(bytes, 0);
  bytes.append("garbage");
  write_raw(pipe.write_fd, bytes);
  WireReader reader(pipe.read_fd);
  reader.pump();
  std::string frame;
  EXPECT_FALSE(reader.next(frame));
  EXPECT_TRUE(reader.corrupt());
}

TEST(WireReaderTest, ManyFramesCompactTheBuffer) {
  // Regression guard for the compaction path: thousands of small frames must
  // neither stall nor corrupt as consumed_ laps the buffer.
  Pipe pipe;
  pipe.make_read_nonblocking();
  WireReader reader(pipe.read_fd);
  std::string frame;
  std::size_t received = 0;
  for (int batch = 0; batch < 100; ++batch) {
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(wire_write_frame(
          pipe.write_fd, "beat " + std::to_string(batch * 50 + i)));
    }
    reader.pump();
    while (reader.next(frame)) {
      EXPECT_EQ(frame, "beat " + std::to_string(received));
      ++received;
    }
  }
  EXPECT_EQ(received, 5000u);
}

}  // namespace
}  // namespace divlib
