#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>

#include "cli/args.hpp"
#include "cli/batch_lanes.hpp"
#include "cli/graph_spec.hpp"
#include "cli/process_spec.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(Args, ParsesPositionalAndOptions) {
  // Note the grammar: "--key value" binds a following non-option token, so
  // flags must use "--flag" at the end, "--flag=1", or precede an option.
  const Args args(std::vector<std::string>{"run", "--graph", "complete:8",
                                           "--k=5", "tail", "--verbose"});
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "run");
  EXPECT_EQ(args.positional()[1], "tail");
  EXPECT_EQ(args.get("graph", ""), "complete:8");
  EXPECT_EQ(args.get_int("k", 0), 5);
  EXPECT_TRUE(args.flag("verbose"));
  EXPECT_FALSE(args.flag("quiet"));
}

TEST(Args, TypedGettersWithDefaults) {
  const Args args(std::vector<std::string>{"--n", "100", "--p", "0.25"});
  EXPECT_EQ(args.get_int("n", 7), 100);
  EXPECT_EQ(args.get_u64("n", 7), 100u);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.0), 0.25);
  EXPECT_EQ(args.get_int("missing", -3), -3);
  EXPECT_EQ(args.get("missing", "x"), "x");
}

TEST(Args, RejectsMalformedNumbers) {
  const Args args(std::vector<std::string>{"--n", "abc"});
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("n", 0.0), std::invalid_argument);
}

TEST(Args, FlagFollowedByOption) {
  const Args args(std::vector<std::string>{"--dot", "--seed", "4"});
  EXPECT_TRUE(args.flag("dot"));
  EXPECT_EQ(args.get_u64("seed", 0), 4u);
}

TEST(Args, UnusedKeysReportTypos) {
  const Args args(std::vector<std::string>{"--graph", "x", "--shceme", "edge"});
  (void)args.get("graph", "");
  const auto unused = args.unused_keys();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "shceme");
}

TEST(Args, FromArgcArgv) {
  const char* argv[] = {"prog", "cmd", "--x", "1"};
  const Args args(4, argv);
  EXPECT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.get_int("x", 0), 1);
}

TEST(GraphSpec, BuildsDeterministicFamilies) {
  Rng rng(1);
  EXPECT_EQ(make_graph_from_spec("complete:6", rng).num_edges(), 15u);
  EXPECT_EQ(make_graph_from_spec("path:5", rng).num_edges(), 4u);
  EXPECT_EQ(make_graph_from_spec("cycle:5", rng).num_edges(), 5u);
  EXPECT_EQ(make_graph_from_spec("star:5", rng).num_edges(), 4u);
  EXPECT_EQ(make_graph_from_spec("hypercube:3", rng).num_vertices(), 8u);
  EXPECT_EQ(make_graph_from_spec("barbell:4", rng).num_vertices(), 8u);
  EXPECT_EQ(make_graph_from_spec("lollipop:4:2", rng).num_vertices(), 6u);
  EXPECT_EQ(make_graph_from_spec("grid:3:4", rng).num_vertices(), 12u);
  EXPECT_EQ(make_graph_from_spec("torus:4:4", rng).num_edges(), 32u);
  EXPECT_EQ(make_graph_from_spec("tree:7", rng).num_edges(), 6u);
  EXPECT_EQ(make_graph_from_spec("margulis:5", rng).num_vertices(), 25u);
}

TEST(GraphSpec, BuildsRandomFamilies) {
  Rng rng(2);
  const Graph regular = make_graph_from_spec("regular:32:4", rng);
  EXPECT_TRUE(regular.is_regular());
  EXPECT_EQ(regular.min_degree(), 4u);
  const Graph gnp = make_graph_from_spec("gnp:64:0.2", rng);
  EXPECT_TRUE(gnp.is_connected());
  const Graph ws = make_graph_from_spec("ws:40:2:0.1", rng);
  EXPECT_EQ(ws.num_vertices(), 40u);
  const Graph ba = make_graph_from_spec("ba:40:2", rng);
  EXPECT_TRUE(ba.is_connected());
}

TEST(GraphSpec, RejectsBadSpecs) {
  Rng rng(3);
  EXPECT_THROW(make_graph_from_spec("klein:4", rng), std::invalid_argument);
  EXPECT_THROW(make_graph_from_spec("complete", rng), std::invalid_argument);
  EXPECT_THROW(make_graph_from_spec("complete:4:5", rng), std::invalid_argument);
  EXPECT_THROW(make_graph_from_spec("complete:x", rng), std::invalid_argument);
  EXPECT_THROW(make_graph_from_spec("gnp:64:high", rng), std::invalid_argument);
}

TEST(GraphSpec, HelpListsFamilies) {
  const std::string help = graph_spec_help();
  EXPECT_NE(help.find("complete:N"), std::string::npos);
  EXPECT_NE(help.find("regular:N:D"), std::string::npos);
}

TEST(ProcessSpec, BuildsAllProcesses) {
  const Graph g = make_complete(6);
  for (const char* name : {"div", "pull", "push", "median", "loadbalance", "best2"}) {
    const auto process =
        make_process_from_spec(name, SelectionScheme::kEdge, g);
    ASSERT_NE(process, nullptr) << name;
    EXPECT_FALSE(process->name().empty());
  }
}

TEST(ProcessSpec, SchemeParsingAndErrors) {
  EXPECT_EQ(parse_scheme("vertex"), SelectionScheme::kVertex);
  EXPECT_EQ(parse_scheme("edge"), SelectionScheme::kEdge);
  EXPECT_THROW(parse_scheme("both"), std::invalid_argument);
  const Graph g = make_complete(4);
  EXPECT_THROW(make_process_from_spec("gossip", SelectionScheme::kEdge, g),
               std::invalid_argument);
}

TEST(BatchLanesCli, AcceptsTheFullLaneRange) {
  EXPECT_EQ(validate_batch_lanes(1), 1u);
  EXPECT_EQ(validate_batch_lanes(16), 16u);
  EXPECT_EQ(validate_batch_lanes(kMaxBatchLanes), kMaxBatchLanes);
}

// Regression: the lane count used to be clamped with
// max(1, static_cast<unsigned>(raw)), so an explicit 0 silently became one
// lane and 2^32 + 1 silently WRAPPED to one lane.  Both must refuse loudly,
// with the value the user actually typed in the message.
TEST(BatchLanesCli, RefusesZeroOversizedAndWrappingLaneCounts) {
  EXPECT_THROW(validate_batch_lanes(0), std::invalid_argument);
  EXPECT_THROW(validate_batch_lanes(kMaxBatchLanes + 1ull),
               std::invalid_argument);
  try {
    validate_batch_lanes((std::uint64_t{1} << 32) + 1);
    FAIL() << "a wrapping lane count must not validate";
  } catch (const std::invalid_argument& refusal) {
    EXPECT_EQ(std::string(refusal.what()),
              "--batch-lanes must be in [1, 4096], got 4294967297");
  }
  try {
    validate_batch_lanes(0);
    FAIL() << "zero lanes must not validate";
  } catch (const std::invalid_argument& refusal) {
    EXPECT_EQ(std::string(refusal.what()),
              "--batch-lanes must be in [1, 4096], got 0");
  }
}

// The refusal strings divsim prints for scalar-only feature combinations:
// pinned verbatim so a reworded refusal is a conscious choice, and so the
// text keeps naming the scalar fallback.  --engine jump is deliberately
// absent: jump-chain campaigns batch through run_batch_jump.
TEST(BatchLanesCli, RefusalTextNamesTheScalarFallback) {
  EXPECT_STREQ(kBatchLanesProcessRefusal,
               "--batch-lanes only supports --process div (the batch engine "
               "inlines the DIV update rule; other processes use the scalar "
               "engines)");
  EXPECT_STREQ(kBatchLanesFaultRefusal,
               "--batch-lanes cannot honor --fault: decorated processes need "
               "the scalar engines' virtual dispatch");
  EXPECT_STREQ(kBatchLanesTraceRefusal,
               "--batch-lanes does not support --trace (per-step tracing is "
               "a scalar-engine feature)");
}

}  // namespace
}  // namespace divlib
