// engine/liveness: the heartbeat failure-detector state machine, tested with
// a fake clock.  The tracker is pure (explicit timestamps in, transitions
// out), so these are exact checks plus fuzzed-schedule property tests in the
// style of ek-kor2's prop_heartbeat suite: whatever interleaving of beats,
// ticks, and exits the fuzzer produces, the machine must respect
//   * no Alive -> Dead without passing through Suspect,
//   * a beat during Suspect restores Alive,
//   * transition timestamps are non-decreasing,
//   * transitions chain (each `from` equals the previous `to`),
//   * Dead is absorbing, and
//   * the machine never wedges in Unknown once enough time passes.
#include "engine/liveness.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <vector>

#include "rng/rng.hpp"

namespace divlib {
namespace {

using namespace std::chrono_literals;
using Clock = LivenessTracker::Clock;

// An arbitrary but fixed origin; the tracker only ever looks at differences.
const Clock::time_point kT0 = Clock::time_point{} + 1000h;

LivenessOptions opts(std::chrono::milliseconds suspect,
                     std::chrono::milliseconds dead) {
  LivenessOptions o;
  o.suspect_after = suspect;
  o.dead_after = dead;
  return o;
}

TEST(LivenessTest, StartsUnknown) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  EXPECT_EQ(tracker.state(), WorkerLiveness::kUnknown);
  EXPECT_EQ(tracker.last_beat(), kT0);
}

TEST(LivenessTest, FirstBeatMovesUnknownToAlive) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  const auto transitions = tracker.beat(kT0 + 10ms);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, WorkerLiveness::kUnknown);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kAlive);
  EXPECT_EQ(transitions[0].when, kT0 + 10ms);
  EXPECT_EQ(transitions[0].cause, LivenessCause::kBeat);
  EXPECT_EQ(tracker.state(), WorkerLiveness::kAlive);
}

TEST(LivenessTest, RepeatBeatWhileAliveIsSilent) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0 + 10ms);
  EXPECT_TRUE(tracker.beat(kT0 + 20ms).empty());
  EXPECT_EQ(tracker.state(), WorkerLiveness::kAlive);
  EXPECT_EQ(tracker.last_beat(), kT0 + 20ms);
}

TEST(LivenessTest, TickBeforeSuspectDeadlineIsSilent) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0);
  EXPECT_TRUE(tracker.tick(kT0 + 99ms).empty());
  EXPECT_EQ(tracker.state(), WorkerLiveness::kAlive);
}

TEST(LivenessTest, SilenceEscalatesAliveToSuspect) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0);
  const auto transitions = tracker.tick(kT0 + 150ms);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, WorkerLiveness::kAlive);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kSuspect);
  // Stamped at the deadline the worker missed, not at observation time.
  EXPECT_EQ(transitions[0].when, kT0 + 100ms);
  EXPECT_EQ(transitions[0].cause, LivenessCause::kTimeout);
}

TEST(LivenessTest, BeatDuringSuspectRestoresAlive) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0);
  tracker.tick(kT0 + 150ms);
  ASSERT_EQ(tracker.state(), WorkerLiveness::kSuspect);
  const auto transitions = tracker.beat(kT0 + 200ms);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kAlive);
  EXPECT_EQ(transitions[0].cause, LivenessCause::kBeat);
  EXPECT_EQ(tracker.state(), WorkerLiveness::kAlive);
  // The recovery also reset the timers: no escalation until a fresh window.
  EXPECT_TRUE(tracker.tick(kT0 + 299ms).empty());
  EXPECT_FALSE(tracker.tick(kT0 + 301ms).empty());
}

TEST(LivenessTest, OneFarTickYieldsSuspectThenDeadAtOwnDeadlines) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0);
  const auto transitions = tracker.tick(kT0 + 10s);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].from, WorkerLiveness::kAlive);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[0].when, kT0 + 100ms);
  EXPECT_EQ(transitions[1].from, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[1].to, WorkerLiveness::kDead);
  EXPECT_EQ(transitions[1].when, kT0 + 300ms);
  EXPECT_EQ(transitions[1].cause, LivenessCause::kTimeout);
  EXPECT_EQ(tracker.state(), WorkerLiveness::kDead);
}

TEST(LivenessTest, SpawnCountsAsPseudoBeatSoUnknownNeverWedges) {
  // A worker that never manages a single beat must still escalate to Dead.
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  const auto first = tracker.tick(kT0 + 150ms);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].from, WorkerLiveness::kUnknown);
  EXPECT_EQ(first[0].to, WorkerLiveness::kSuspect);
  const auto second = tracker.tick(kT0 + 350ms);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].to, WorkerLiveness::kDead);
}

TEST(LivenessTest, ExitSynthesizesTheSuspectHop) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0 + 10ms);
  const auto transitions = tracker.exited(kT0 + 50ms);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].from, WorkerLiveness::kAlive);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[0].when, kT0 + 50ms);
  EXPECT_EQ(transitions[0].cause, LivenessCause::kExit);
  EXPECT_EQ(transitions[1].from, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[1].to, WorkerLiveness::kDead);
  EXPECT_EQ(transitions[1].cause, LivenessCause::kExit);
  EXPECT_EQ(tracker.state(), WorkerLiveness::kDead);
}

TEST(LivenessTest, ExitFromSuspectIsOneHop) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.beat(kT0);
  tracker.tick(kT0 + 150ms);
  const auto transitions = tracker.exited(kT0 + 200ms);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kDead);
}

TEST(LivenessTest, DeadIsAbsorbing) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  tracker.exited(kT0 + 10ms);
  ASSERT_EQ(tracker.state(), WorkerLiveness::kDead);
  // Late beats sit in the pipe after a SIGKILL; they must not resurrect.
  EXPECT_TRUE(tracker.beat(kT0 + 20ms).empty());
  EXPECT_TRUE(tracker.tick(kT0 + 10s).empty());
  EXPECT_TRUE(tracker.exited(kT0 + 10s).empty());
  EXPECT_EQ(tracker.state(), WorkerLiveness::kDead);
}

TEST(LivenessTest, BackwardClockNeverProducesDecreasingStamps) {
  LivenessTracker tracker(opts(100ms, 300ms), kT0);
  const auto first = tracker.beat(kT0 + 500ms);
  ASSERT_EQ(first.size(), 1u);
  // Input clock steps backwards (e.g. two pollers racing): silent, and the
  // eventual escalation stamps still clamp forward.
  EXPECT_TRUE(tracker.tick(kT0 + 50ms).empty());
  const auto wedge = tracker.tick(kT0 + 10s);
  ASSERT_EQ(wedge.size(), 2u);
  EXPECT_GE(wedge[0].when, first[0].when);
  EXPECT_GE(wedge[1].when, wedge[0].when);
}

TEST(LivenessTest, OptionsClampKeepsSuspectStage) {
  // dead_after <= suspect_after would erase the Suspect stage; the ctor
  // clamps so every death still passes through it.
  LivenessTracker tracker(opts(100ms, 50ms), kT0);
  tracker.beat(kT0);
  const auto transitions = tracker.tick(kT0 + 10s);
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_EQ(transitions[0].to, WorkerLiveness::kSuspect);
  EXPECT_EQ(transitions[1].to, WorkerLiveness::kDead);
  EXPECT_GT(transitions[1].when, transitions[0].when);
}

// ---------------------------------------------------------------------------
// Fuzzed-schedule properties (the prop_heartbeat analogue).  Each iteration
// drives one tracker through a random input schedule and checks the global
// invariants on the full transition log.

struct LoggedRun {
  std::vector<LivenessTransition> log;
  WorkerLiveness final_state = WorkerLiveness::kUnknown;
};

LoggedRun fuzz_one_schedule(std::uint64_t seed) {
  Rng rng(seed);
  // Thresholds themselves are fuzzed too (clamped sane by the ctor).
  const auto suspect = std::chrono::milliseconds(1 + rng.next() % 200);
  const auto dead = std::chrono::milliseconds(1 + rng.next() % 600);
  LivenessTracker tracker(opts(suspect, dead), kT0);

  LoggedRun run;
  Clock::time_point now = kT0;
  const std::size_t steps = 4 + rng.next() % 60;
  for (std::size_t i = 0; i < steps; ++i) {
    // Mostly forward steps; occasionally a backward one to attack the
    // monotonicity clamp.
    const auto delta = std::chrono::milliseconds(rng.next() % 400);
    if (rng.next() % 8 == 0) {
      now -= delta / 2;
    } else {
      now += delta;
    }
    std::vector<LivenessTransition> out;
    switch (rng.next() % 8) {
      case 0:
      case 1:
      case 2:
        out = tracker.beat(now);
        break;
      case 7:
        if (rng.next() % 4 == 0) {
          out = tracker.exited(now);
          break;
        }
        [[fallthrough]];
      default:
        out = tracker.tick(now);
        break;
    }
    run.log.insert(run.log.end(), out.begin(), out.end());
  }
  // Close every schedule with a tick far past both thresholds: no schedule
  // may leave the machine wedged in Unknown after that.
  const auto out = tracker.tick(now + 1h);
  run.log.insert(run.log.end(), out.begin(), out.end());
  run.final_state = tracker.state();
  return run;
}

TEST(LivenessPropertyTest, FuzzedSchedulesHoldAllInvariants) {
  for (std::uint64_t seed = 1; seed <= 500; ++seed) {
    const LoggedRun run = fuzz_one_schedule(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));

    // Transitions chain: each `from` is the previous `to`, starting Unknown.
    WorkerLiveness expect_from = WorkerLiveness::kUnknown;
    for (const auto& t : run.log) {
      EXPECT_EQ(t.from, expect_from) << "broken transition chain";
      EXPECT_NE(t.from, t.to) << "self-loop reported as a transition";
      expect_from = t.to;
    }
    EXPECT_EQ(expect_from, run.final_state);

    // No Alive -> Dead (or Unknown -> Dead) shortcut: every entry into Dead
    // comes from Suspect.
    for (const auto& t : run.log) {
      if (t.to == WorkerLiveness::kDead) {
        EXPECT_EQ(t.from, WorkerLiveness::kSuspect)
            << "entered Dead from " << to_string(t.from);
      }
    }

    // A beat only ever lands the machine in Alive, and only from a live
    // (non-Dead) state -- beats never resurrect.
    for (const auto& t : run.log) {
      if (t.cause == LivenessCause::kBeat) {
        EXPECT_EQ(t.to, WorkerLiveness::kAlive);
        EXPECT_NE(t.from, WorkerLiveness::kDead);
      }
    }

    // Timestamps are non-decreasing even against backward input clocks.
    for (std::size_t i = 1; i < run.log.size(); ++i) {
      EXPECT_GE(run.log[i].when, run.log[i - 1].when)
          << "stamp regression at transition " << i;
    }

    // Dead is terminal in the log too: nothing after the first entry to
    // Dead.
    bool dead = false;
    for (const auto& t : run.log) {
      EXPECT_FALSE(dead) << "transition after Dead";
      dead = t.to == WorkerLiveness::kDead;
    }

    // The closing far tick guarantees no schedule wedges in Unknown.
    EXPECT_NE(run.final_state, WorkerLiveness::kUnknown);
    EXPECT_EQ(run.final_state, WorkerLiveness::kDead);
  }
}

TEST(LivenessPropertyTest, BeatsAtEveryStepKeepTheWorkerAliveForever) {
  // Degenerate schedule: a worker that always beats inside the window never
  // leaves Alive, no matter how long the run.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const auto suspect = std::chrono::milliseconds(50 + rng.next() % 200);
    LivenessTracker tracker(
        opts(suspect, suspect + std::chrono::milliseconds(1 + rng.next() % 400)),
        kT0);
    Clock::time_point now = kT0;
    tracker.beat(now);
    for (int i = 0; i < 200; ++i) {
      now += std::chrono::milliseconds(rng.next() % 50);  // < any threshold
      tracker.tick(now);
      tracker.beat(now);
      ASSERT_EQ(tracker.state(), WorkerLiveness::kAlive) << "step " << i;
    }
  }
}

// Regression: a heartbeat cadence at or above suspect_after flapped every
// healthy worker Unknown/Alive -> Suspect on each beat gap (and at
// dead_after got it killed mid-work).  The cadence validator must push such
// configurations strictly inside the suspect window.
TEST(LivenessTest, HeartbeatCadenceInsideSuspectWindowIsUntouched) {
  bool clamped = true;
  EXPECT_EQ(clamp_heartbeat_cadence(50ms, 400ms, &clamped), 50ms);
  EXPECT_FALSE(clamped);
  EXPECT_EQ(clamp_heartbeat_cadence(399ms, 400ms, nullptr), 399ms);
}

TEST(LivenessTest, HeartbeatCadenceAtOrAboveSuspectAfterClamps) {
  bool clamped = false;
  // Equal to the threshold already flaps: the beat lands exactly when the
  // timer fires, and any scheduling delay tips it over.
  EXPECT_EQ(clamp_heartbeat_cadence(400ms, 400ms, &clamped), 200ms);
  EXPECT_TRUE(clamped);
  clamped = false;
  EXPECT_EQ(clamp_heartbeat_cadence(1000ms, 400ms, &clamped), 200ms);
  EXPECT_TRUE(clamped);
}

TEST(LivenessTest, HeartbeatCadenceNonPositiveClamps) {
  bool clamped = false;
  EXPECT_EQ(clamp_heartbeat_cadence(0ms, 400ms, &clamped), 200ms);
  EXPECT_TRUE(clamped);
  clamped = false;
  EXPECT_EQ(clamp_heartbeat_cadence(-5ms, 400ms, &clamped), 200ms);
  EXPECT_TRUE(clamped);
}

TEST(LivenessTest, HeartbeatCadenceClampMirrorsTrackerFloors) {
  // The tracker floors suspect_after at 1ms; the validator must compare
  // against the same effective threshold and never return a zero cadence.
  bool clamped = false;
  EXPECT_EQ(clamp_heartbeat_cadence(10ms, 0ms, &clamped), 1ms);
  EXPECT_TRUE(clamped);
  clamped = false;
  EXPECT_EQ(clamp_heartbeat_cadence(1ms, 1ms, &clamped), 1ms);
  EXPECT_TRUE(clamped);
}

// The clamped cadence keeps a healthy beat-every-interval worker Alive
// forever -- the property the clamp exists to restore.
TEST(LivenessTest, ClampedCadenceNeverFlapsAHealthyWorker) {
  for (const auto requested : {400ms, 800ms, 0ms}) {
    const auto cadence = clamp_heartbeat_cadence(requested, 400ms, nullptr);
    LivenessTracker tracker(opts(400ms, 1500ms), kT0);
    Clock::time_point now = kT0;
    tracker.beat(now);
    for (int i = 0; i < 100; ++i) {
      now += cadence;
      tracker.tick(now);
      tracker.beat(now);
      ASSERT_EQ(tracker.state(), WorkerLiveness::kAlive)
          << "requested " << requested.count() << "ms, step " << i;
    }
  }
}

}  // namespace
}  // namespace divlib
