#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace divlib {
namespace {

TEST(Generators, CompleteGraph) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 10u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_complete(0), std::invalid_argument);
}

TEST(Generators, CompleteSingletonAndPair) {
  EXPECT_EQ(make_complete(1).num_edges(), 0u);
  const Graph k2 = make_complete(2);
  EXPECT_EQ(k2.num_edges(), 1u);
  EXPECT_TRUE(k2.has_edge(0, 1));
}

TEST(Generators, PathGraph) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_EQ(g.degree(4), 1u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(0, 4));
}

TEST(Generators, CycleGraph) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_THROW(make_cycle(2), std::invalid_argument);
}

TEST(Generators, StarGraph) {
  const Graph g = make_star(6);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  for (VertexId v = 1; v < 6; ++v) {
    EXPECT_EQ(g.degree(v), 1u);
  }
  EXPECT_THROW(make_star(1), std::invalid_argument);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(2, 3);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(2), 2u);
  EXPECT_FALSE(g.has_edge(0, 1));  // within part A
  EXPECT_FALSE(g.has_edge(2, 3));  // within part B
  EXPECT_TRUE(g.has_edge(1, 4));
}

TEST(Generators, Barbell) {
  const Graph g = make_barbell(4);
  EXPECT_EQ(g.num_vertices(), 8u);
  // Two K_4 (6 edges each) plus one bridge.
  EXPECT_EQ(g.num_edges(), 13u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(1, 5));
}

TEST(Generators, DoubleCliqueBridges) {
  const Graph g = make_double_clique(4, 3);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.has_edge(2, 6));
  EXPECT_THROW(make_double_clique(4, 0), std::invalid_argument);
  EXPECT_THROW(make_double_clique(4, 5), std::invalid_argument);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(4, 3);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(6), 1u);  // end of the tail
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(3);
  EXPECT_EQ(g.num_vertices(), 8u);
  EXPECT_EQ(g.num_edges(), 12u);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 3u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.has_edge(0, 4));
  EXPECT_FALSE(g.has_edge(0, 3));  // differs in two bits
  EXPECT_THROW(make_hypercube(0), std::invalid_argument);
}

TEST(Generators, GridPlain) {
  const Graph g = make_grid(3, 4, /*torus=*/false);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 17u);  // 3*3 horizontal + 2*4 vertical
  EXPECT_EQ(g.degree(0), 2u);     // corner
  EXPECT_TRUE(g.is_connected());
}

TEST(Generators, GridTorusIsFourRegular) {
  const Graph g = make_grid(4, 5, /*torus=*/true);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_EQ(g.num_edges(), 2u * 20u);
  EXPECT_THROW(make_grid(2, 5, true), std::invalid_argument);
}

TEST(Generators, MargulisIsAConnectedNearRegularGraph) {
  const Graph g = make_margulis(8);
  EXPECT_EQ(g.num_vertices(), 64u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_LE(g.max_degree(), 8u);
  EXPECT_GE(g.min_degree(), 3u);
  EXPECT_THROW(make_margulis(2), std::invalid_argument);
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(6), 1u);
  EXPECT_TRUE(g.is_connected());
}

}  // namespace
}  // namespace divlib
