#include "io/crc32.hpp"

#include <gtest/gtest.h>

#include <string>

namespace divlib {
namespace {

TEST(Crc32, MatchesKnownVectors) {
  // The canonical IEEE 802.3 check value.
  EXPECT_EQ(crc32_of("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32_of(""), 0x00000000u);
  EXPECT_EQ(crc32_of("a"), 0xE8B7BE43u);
  EXPECT_EQ(crc32_of("The quick brown fox jumps over the lazy dog"),
            0x414FA339u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "divlib journal frame payload, split awkwardly";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32 crc;
    crc.update(data.substr(0, split));
    crc.update(data.substr(split));
    EXPECT_EQ(crc.value(), crc32_of(data)) << "split at " << split;
  }
}

TEST(Crc32, ValueIsIdempotentAndResetRestarts) {
  Crc32 crc;
  crc.update("abc");
  const std::uint32_t first = crc.value();
  EXPECT_EQ(crc.value(), first);  // value() does not consume state
  crc.update("def");
  EXPECT_EQ(crc.value(), crc32_of("abcdef"));
  crc.reset();
  crc.update("123456789");
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::string data = "payload under test";
  const std::uint32_t clean = crc32_of(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(crc32_of(data), clean) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

}  // namespace
}  // namespace divlib
