#include "exact/two_voting_chain.hpp"

#include <gtest/gtest.h>

#include "core/pull_voting.hpp"
#include "engine/engine.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "spectral/linear_solver.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

TEST(LinearSolver, SolvesKnownSystem) {
  DenseMatrix a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 3.0;
  const auto x = solve_linear_system(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSolver, PivotsOnZeroDiagonal) {
  DenseMatrix a(2, 2);
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  const auto x = solve_linear_system(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(LinearSolver, RejectsSingularAndMismatched) {
  DenseMatrix singular(2, 2);
  singular.at(0, 0) = 1.0;
  singular.at(0, 1) = 2.0;
  singular.at(1, 0) = 2.0;
  singular.at(1, 1) = 4.0;
  EXPECT_THROW(solve_linear_system(singular, {1.0, 2.0}), std::runtime_error);
  DenseMatrix a(2, 2, 1.0);
  EXPECT_THROW(solve_linear_system(a, {1.0}), std::invalid_argument);
}

TEST(TwoVotingChain, RejectsLargeStateSpaces) {
  const Graph g = make_complete(16);
  EXPECT_THROW(TwoVotingChain(g, SelectionScheme::kEdge, 10),
               std::invalid_argument);
}

TEST(TwoVotingChain, TransitionProbabilitiesRowStochastic) {
  const Graph g = make_path(4);
  const TwoVotingChain chain(g, SelectionScheme::kVertex);
  for (std::uint32_t from = 0; from < chain.num_states(); ++from) {
    double total = 0.0;
    for (std::uint32_t to = 0; to < chain.num_states(); ++to) {
      const double p = chain.transition_probability(from, to);
      EXPECT_GE(p, -1e-12);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "state " << from;
  }
}

TEST(TwoVotingChain, K2IsASingleCoinFlip) {
  const Graph g = make_complete(2);
  const TwoVotingChain chain(g, SelectionScheme::kEdge);
  // State 0b01: one vertex holds 1.
  EXPECT_NEAR(chain.win_probability(0b01), 0.5, 1e-12);
  // Every step resolves the disagreement: absorption in exactly 1 step.
  EXPECT_NEAR(chain.expected_absorption_time(0b01), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(chain.expected_absorption_time(0b00), 0.0);
  EXPECT_DOUBLE_EQ(chain.expected_absorption_time(0b11), 0.0);
}

TEST(TwoVotingChain, SolverMatchesClosedFormEdgeProcess) {
  // Eq. (3), edge process: P(1 wins) = N_1/n on ANY graph.
  for (const Graph& g : {make_star(6), make_path(6), make_barbell(3),
                         make_complete(6), make_cycle(6)}) {
    const TwoVotingChain chain(g, SelectionScheme::kEdge);
    for (std::uint32_t mask = 0; mask < chain.num_states(); ++mask) {
      ASSERT_NEAR(chain.win_probability(mask),
                  chain.win_probability_closed_form(mask), 1e-9)
          << g.summary() << " mask " << mask;
    }
  }
}

TEST(TwoVotingChain, SolverMatchesClosedFormVertexProcess) {
  // Eq. (3), vertex process: P(1 wins) = d(A_1)/2m on ANY graph.
  for (const Graph& g : {make_star(6), make_path(6), make_barbell(3),
                         make_lollipop(4, 2)}) {
    const TwoVotingChain chain(g, SelectionScheme::kVertex);
    for (std::uint32_t mask = 0; mask < chain.num_states(); ++mask) {
      ASSERT_NEAR(chain.win_probability(mask),
                  chain.win_probability_closed_form(mask), 1e-9)
          << g.summary() << " mask " << mask;
    }
  }
}

TEST(TwoVotingChain, AbsorptionTimeSymmetryOnCompleteGraph) {
  // On K_n the expected time depends only on |B| and is symmetric in
  // |B| <-> n - |B|.
  const Graph g = make_complete(6);
  const TwoVotingChain chain(g, SelectionScheme::kEdge);
  const auto mask_of = [](std::uint32_t count) {
    return static_cast<std::uint32_t>((1u << count) - 1);
  };
  EXPECT_NEAR(chain.expected_absorption_time(mask_of(1)),
              chain.expected_absorption_time(0b111110u), 1e-9);
  EXPECT_NEAR(chain.expected_absorption_time(mask_of(2)),
              chain.expected_absorption_time(0b111100u), 1e-9);
  // More disagreement takes longer in expectation.
  EXPECT_GT(chain.expected_absorption_time(mask_of(3)),
            chain.expected_absorption_time(mask_of(1)));
}

TEST(TwoVotingChain, WorstCaseIsBalancedOnCompleteGraph) {
  const Graph g = make_complete(6);
  const TwoVotingChain chain(g, SelectionScheme::kEdge);
  const auto worst = chain.worst_case_time();
  std::uint32_t bits = 0;
  for (std::uint32_t m = worst.mask; m != 0; m >>= 1) {
    bits += m & 1u;
  }
  EXPECT_EQ(bits, 3u);  // half/half split
  EXPECT_GT(worst.time, 0.0);
}

TEST(TwoVotingChain, MonteCarloAgreesWithExactTime) {
  const Graph g = make_star(6);
  const TwoVotingChain chain(g, SelectionScheme::kVertex);
  const std::uint32_t mask = 0b000001;  // opinion 1 on the center
  const double exact_time = chain.expected_absorption_time(mask);
  const double exact_win = chain.win_probability(mask);

  constexpr int kReplicas = 4000;
  struct Outcome {
    double steps = 0.0;
    int won = 0;
  };
  const auto outcomes = run_replicas<Outcome>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        std::vector<Opinion> opinions(6, 0);
        opinions[0] = 1;
        OpinionState state(g, std::move(opinions));
        PullVoting process(g, SelectionScheme::kVertex);
        RunOptions options;
        options.max_steps = 10'000'000;
        const RunResult result = run(process, state, rng, options);
        return Outcome{static_cast<double>(result.steps),
                       result.winner.value_or(-1) == 1 ? 1 : 0};
      },
      {.master_seed = 55});
  Summary steps;
  int wins = 0;
  for (const Outcome& outcome : outcomes) {
    steps.add(outcome.steps);
    wins += outcome.won;
  }
  EXPECT_NEAR(steps.mean(), exact_time, 5.0 * steps.stderror());
  EXPECT_NEAR(static_cast<double>(wins) / kReplicas, exact_win, 0.02);
}

}  // namespace
}  // namespace divlib
