#include "core/best_of_three.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(BestOfThree, ResolveMajorityRules) {
  EXPECT_EQ(BestOfThree::resolve(1, 1, 2, 0), 1);
  EXPECT_EQ(BestOfThree::resolve(2, 1, 1, 0), 1);
  EXPECT_EQ(BestOfThree::resolve(1, 2, 1, 0), 1);
  EXPECT_EQ(BestOfThree::resolve(3, 3, 3, 2), 3);
}

TEST(BestOfThree, ResolveTiebreakCyclesSamples) {
  EXPECT_EQ(BestOfThree::resolve(1, 2, 3, 0), 1);
  EXPECT_EQ(BestOfThree::resolve(1, 2, 3, 1), 2);
  EXPECT_EQ(BestOfThree::resolve(1, 2, 3, 2), 3);
}

TEST(BestOfThree, NameAndValidation) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(BestOfThree(g).name(), "best-of-three/vertex");
  const Graph isolated(3, {{0, 1}});
  EXPECT_THROW(BestOfThree{isolated}, std::invalid_argument);
}

TEST(BestOfThree, OnlySampledValuesEverAppear) {
  const Graph g = make_complete(10);
  OpinionState state(g, {1, 1, 1, 4, 4, 4, 9, 9, 9, 9});
  BestOfThree process(g);
  Rng rng(1);
  for (int step = 0; step < 3000 && !state.is_consensus(); ++step) {
    process.step(state, rng);
    for (VertexId v = 0; v < 10; ++v) {
      const Opinion o = state.opinion(v);
      ASSERT_TRUE(o == 1 || o == 4 || o == 9);
    }
  }
}

TEST(BestOfThree, AmplifiesPlurality) {
  // 60/25/15 split: the plurality should win nearly always on K_n.
  const Graph g = make_complete(40);
  constexpr int kReplicas = 300;
  const auto wins = run_replicas<int>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        OpinionState state(g, opinions_with_counts(40, 1, {24, 10, 6}, rng));
        BestOfThree process(g);
        RunOptions options;
        options.max_steps = 2'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1) == 1 ? 1 : 0;
      },
      {.master_seed = 17});
  int plurality_wins = 0;
  for (const int w : wins) {
    plurality_wins += w;
  }
  EXPECT_GT(plurality_wins, kReplicas * 9 / 10);
}

TEST(BestOfThree, ReachesConsensus) {
  const Graph g = make_complete(24);
  Rng init(2);
  OpinionState state(g, uniform_random_opinions(24, 1, 4, init));
  BestOfThree process(g);
  Rng rng(3);
  RunOptions options;
  options.max_steps = 2'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace divlib
