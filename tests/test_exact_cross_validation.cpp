// Mutual cross-validation of the two exact solvers: with k = 2 opinions the
// full DIV chain IS two-opinion pull voting (a +-1 move between adjacent
// values is a full adoption), so DivChain and TwoVotingChain must agree on
// every win probability and every expected absorption time, for every
// initial state, on every graph, under both selection schemes.  Two
// independently written solvers (different encodings, different solve
// paths: direct Gaussian vs LU) agreeing to 1e-9 across thousands of states
// is a strong correctness argument for both.
#include <gtest/gtest.h>

#include "exact/div_chain.hpp"
#include "exact/two_voting_chain.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

class ExactCrossValidation
    : public ::testing::TestWithParam<SelectionScheme> {};

TEST_P(ExactCrossValidation, SolversAgreeOnEveryState) {
  const SelectionScheme scheme = GetParam();
  const Graph graphs[] = {make_complete(6), make_path(6), make_star(6),
                          make_cycle(6),    make_barbell(3)};
  for (const Graph& g : graphs) {
    const VertexId n = g.num_vertices();
    const TwoVotingChain pull(g, scheme);
    const DivChain div(g, 2, scheme);
    for (std::uint32_t mask = 0; mask < pull.num_states(); ++mask) {
      // Translate the bitmask into the DivChain's base-2 digit encoding.
      std::vector<Opinion> opinions(n);
      for (VertexId v = 0; v < n; ++v) {
        opinions[v] = static_cast<Opinion>((mask >> v) & 1u);
      }
      const std::uint64_t state = div.encode(opinions);
      ASSERT_NEAR(div.absorption_probability(state, 1),
                  pull.win_probability(mask), 1e-9)
          << g.summary() << " mask " << mask;
      ASSERT_NEAR(div.expected_consensus_time(state),
                  pull.expected_absorption_time(mask), 1e-7)
          << g.summary() << " mask " << mask;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(BothSchemes, ExactCrossValidation,
                         ::testing::Values(SelectionScheme::kEdge,
                                           SelectionScheme::kVertex),
                         [](const ::testing::TestParamInfo<SelectionScheme>& info) {
                           return std::string(to_string(info.param));
                         });

}  // namespace
}  // namespace divlib
