// Crash-point injection coverage for the io layer (io/failpoint.*).
//
// These tests sweep the failpoint across EVERY byte offset of a journal
// frame, an atomic-file payload, and a wire frame, and assert the layer's
// durability contract at each cut: the journal recovers its longest valid
// prefix, atomic_write_file leaves the destination untouched, and a torn
// wire frame is detected by the reader instead of being misparsed.
#include "io/failpoint.hpp"

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "io/atomic_file.hpp"
#include "io/journal.hpp"
#include "io/wire.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;

class FailpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("divlib_failpoint_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    disarm_io_failpoint();  // never leak an armed site into the next test
    fs::remove_all(dir_);
  }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

using IoFailpointTest = FailpointFixture;

TEST_F(IoFailpointTest, UnarmedAdmitsEverything) {
  disarm_io_failpoint();
  EXPECT_FALSE(io_failpoint_armed("journal"));
  EXPECT_EQ(io_failpoint_admit("journal", 1000u), 1000u);
}

TEST_F(IoFailpointTest, ArmedSiteConsumesItsBudgetThenRefuses) {
  arm_io_failpoint("journal", 10);
  EXPECT_TRUE(io_failpoint_armed("journal"));
  EXPECT_FALSE(io_failpoint_armed("wire"));  // other sites unaffected
  EXPECT_EQ(io_failpoint_admit("wire", 500u), 500u);
  EXPECT_EQ(io_failpoint_admit("journal", 6u), 6u);   // within budget
  EXPECT_EQ(io_failpoint_admit("journal", 6u), 4u);   // budget exhausted here
  EXPECT_EQ(io_failpoint_admit("journal", 6u), 0u);   // dead device stays dead
  disarm_io_failpoint();
  EXPECT_EQ(io_failpoint_admit("journal", 6u), 6u);
}

TEST_F(IoFailpointTest, RearmingReplacesTheSite) {
  arm_io_failpoint("journal", 5);
  arm_io_failpoint("atomic_file", 7);
  EXPECT_FALSE(io_failpoint_armed("journal"));
  EXPECT_TRUE(io_failpoint_armed("atomic_file"));
  EXPECT_EQ(io_failpoint_admit("atomic_file", 100u), 7u);
}

// --- journal ---------------------------------------------------------------

using JournalCrashPointTest = FailpointFixture;

TEST_F(JournalCrashPointTest, TornAppendAtEveryOffsetRecoversThePrefix) {
  const std::string payload = "replica 7 done";
  const std::size_t frame = 8 + payload.size();  // u32 len + u32 crc + bytes
  for (std::size_t cut = 0; cut < frame; ++cut) {
    const std::string journal = path("cut" + std::to_string(cut) + ".journal");
    {
      JournalWriter writer(journal);
      writer.append("intact record");
      writer.flush();
      arm_io_failpoint("journal", cut);
      EXPECT_THROW(writer.append(payload), std::runtime_error) << cut;
      disarm_io_failpoint();
    }
    // The torn frame is the expected crash artifact: recovery keeps the
    // intact record, truncates the tail, and appends continue cleanly.
    const JournalRecovery recovery = recover_journal(journal);
    ASSERT_EQ(recovery.records.size(), 1u) << "cut " << cut;
    EXPECT_EQ(recovery.records[0], "intact record");
    EXPECT_EQ(recovery.valid_bytes, recovery.total_bytes);
    JournalWriter writer(journal);
    writer.append(payload);
    writer.flush();
    const JournalRecovery reread = read_journal(journal);
    ASSERT_EQ(reread.records.size(), 2u) << "cut " << cut;
    EXPECT_EQ(reread.records[1], payload);
  }
}

TEST_F(JournalCrashPointTest, TornMagicAtEveryOffsetRecoversAsEmpty) {
  for (std::size_t cut = 0; cut < 8; ++cut) {
    const std::string journal =
        path("magic" + std::to_string(cut) + ".journal");
    arm_io_failpoint("journal", cut);
    EXPECT_THROW(JournalWriter writer(journal), std::runtime_error) << cut;
    disarm_io_failpoint();
    const JournalRecovery recovery = recover_journal(journal);
    EXPECT_TRUE(recovery.records.empty()) << cut;
    EXPECT_EQ(recovery.valid_bytes, 0u) << cut;
    // A fresh writer re-creates the magic over the truncated file.
    {
      JournalWriter writer(journal);
      writer.append("fresh");
    }
    EXPECT_EQ(read_journal(journal).records.size(), 1u) << cut;
  }
}

TEST_F(JournalCrashPointTest, CloseSurfacesWhatTheDestructorCannot) {
  const std::string journal = path("close.journal");
  JournalWriter writer(journal);
  writer.append("one");
  writer.close();
  EXPECT_NO_THROW(writer.close());  // idempotent
  EXPECT_THROW(writer.append("two"), std::runtime_error);
  EXPECT_THROW(writer.flush(), std::runtime_error);
  ASSERT_EQ(read_journal(journal).records.size(), 1u);
}

// --- atomic_file -----------------------------------------------------------

using AtomicFileCrashPointTest = FailpointFixture;

TEST_F(AtomicFileCrashPointTest, TornWriteAtEveryOffsetLeavesDestination) {
  const std::string target = path("target.txt");
  atomic_write_file(target, "precious original");
  const std::string replacement = "replacement contents, longer than before";
  for (std::size_t cut = 0; cut < replacement.size(); ++cut) {
    arm_io_failpoint("atomic_file", cut);
    EXPECT_THROW(atomic_write_file(target, replacement), std::runtime_error)
        << cut;
    disarm_io_failpoint();
    EXPECT_EQ(read_file(target), "precious original") << "cut " << cut;
    EXPECT_FALSE(fs::exists(target + ".tmp")) << "cut " << cut;
  }
  atomic_write_file(target, replacement);
  EXPECT_EQ(read_file(target), replacement);
}

TEST_F(AtomicFileCrashPointTest, DirectorySyncHelperAcceptsRelativeAndAbsolute) {
  const std::string target = path("synced.txt");
  atomic_write_file(target, "x");
  EXPECT_NO_THROW(fsync_directory_of(target));
  EXPECT_NO_THROW(fsync_directory_of("bare-filename-no-directory"));
  EXPECT_THROW(fsync_directory_of(path("absent-subdir") + "/file"),
               std::runtime_error);
}

// --- wire ------------------------------------------------------------------

using WireCrashPointTest = FailpointFixture;

TEST_F(WireCrashPointTest, TornFrameAtEveryOffsetIsDetectedByTheReader) {
  const std::string payload = "work 12 3";
  const std::size_t frame = 8 + payload.size();
  for (std::size_t cut = 0; cut < frame; ++cut) {
    int fds[2];
    ASSERT_EQ(::pipe(fds), 0);
    arm_io_failpoint("wire", cut);
    EXPECT_FALSE(wire_write_frame(fds[1], payload)) << cut;
    disarm_io_failpoint();
    ::close(fds[1]);  // the writer "died": EOF after the torn bytes
    if (cut == 0) {
      // Nothing made it out: a clean EOF between frames.
      EXPECT_EQ(wire_read_frame(fds[0], nullptr), std::nullopt) << cut;
    } else {
      // EOF inside the header or the body: loud, never a misparse.
      EXPECT_THROW(wire_read_frame(fds[0], nullptr), std::runtime_error)
          << cut;
    }
    ::close(fds[0]);
  }
}

TEST_F(WireCrashPointTest, BytesAfterATornFrameFailTheCrc) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string first = "first frame payload";
  arm_io_failpoint("wire", 8 + first.size() - 3);  // chop 3 payload bytes
  EXPECT_FALSE(wire_write_frame(fds[1], first));
  disarm_io_failpoint();
  // A later (complete) frame lands right after the torn bytes.  The reader
  // parses the first header, swallows 3 bytes of the second frame as the
  // missing payload, and the CRC convicts the stream.
  EXPECT_TRUE(wire_write_frame(fds[1], "second frame"));
  ::close(fds[1]);
  WireReader reader(fds[0]);
  // Blocking fd: pump() drains to EOF in one loop.
  reader.pump();
  std::string out;
  EXPECT_FALSE(reader.next(out));
  EXPECT_TRUE(reader.corrupt());
  ::close(fds[0]);
}

TEST_F(WireCrashPointTest, FullyAdmittedFrameStillRoundTrips) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  arm_io_failpoint("wire", 1024);  // generous budget: no tear
  EXPECT_TRUE(wire_write_frame(fds[1], "ok 5"));
  disarm_io_failpoint();
  ::close(fds[1]);
  const auto got = wire_read_frame(fds[0], nullptr);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, "ok 5");
  ::close(fds[0]);
}

}  // namespace
}  // namespace divlib
