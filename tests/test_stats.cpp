#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"
#include "stats/ecdf.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

TEST(Summary, EmptyIsZero) {
  const Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderror(), 0.0);
}

TEST(Summary, KnownMoments) {
  const std::vector<double> values{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = Summary::of(values);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, SingleSampleHasZeroVariance) {
  Summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, MergeMatchesPooledComputation) {
  Rng rng(1);
  Summary all;
  Summary left;
  Summary right;
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.normal() * 3.0 + 1.0;
    all.add(value);
    (i % 2 == 0 ? left : right).add(value);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmptyIsIdentity) {
  Summary s = Summary::of(std::vector<double>{1.0, 2.0});
  const Summary before = s;
  s.merge(Summary{});
  EXPECT_EQ(s.count(), before.count());
  EXPECT_DOUBLE_EQ(s.mean(), before.mean());
  Summary empty;
  empty.merge(s);
  EXPECT_DOUBLE_EQ(empty.mean(), s.mean());
}

TEST(Summary, CiShrinksWithSamples) {
  Rng rng(2);
  Summary small;
  Summary large;
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.uniform01();
    if (i < 100) {
      small.add(value);
    }
    large.add(value);
  }
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Wilson, CoversPointEstimate) {
  const auto est = wilson_interval(30, 100);
  EXPECT_DOUBLE_EQ(est.p_hat, 0.3);
  EXPECT_LT(est.lower, 0.3);
  EXPECT_GT(est.upper, 0.3);
  EXPECT_GE(est.lower, 0.0);
  EXPECT_LE(est.upper, 1.0);
}

TEST(Wilson, DegenerateCases) {
  const auto zero = wilson_interval(0, 100);
  EXPECT_DOUBLE_EQ(zero.p_hat, 0.0);
  EXPECT_GT(zero.upper, 0.0);
  const auto all = wilson_interval(100, 100);
  EXPECT_DOUBLE_EQ(all.p_hat, 1.0);
  EXPECT_LT(all.lower, 1.0);
  const auto none = wilson_interval(0, 0);
  EXPECT_DOUBLE_EQ(none.p_hat, 0.0);
}

TEST(Histogram, BinsValuesAndClamps) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.9);    // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(100.0);  // clamped to bin 4
  h.add(5.0);    // bin 2 (boundary goes up)
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(2), 1u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_fraction(0), 0.4);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(2.0, 1.0, 4), std::invalid_argument);
}

TEST(Histogram, SparklineHasOneCharPerBin) {
  Histogram h(0.0, 1.0, 8);
  for (int i = 0; i < 100; ++i) {
    h.add(i / 100.0);
  }
  EXPECT_EQ(h.ascii_sparkline().size(), 8u);
}

TEST(IntCounter, CountsAndMode) {
  IntCounter counter;
  counter.add(3);
  counter.add(3);
  counter.add(5);
  EXPECT_EQ(counter.total(), 3u);
  EXPECT_EQ(counter.count(3), 2u);
  EXPECT_EQ(counter.count(4), 0u);
  EXPECT_NEAR(counter.fraction(5), 1.0 / 3.0, 1e-12);
  EXPECT_EQ(counter.mode(), 3);
}

TEST(IntCounter, ModeTieBreaksToSmallest) {
  IntCounter counter;
  counter.add(7);
  counter.add(2);
  EXPECT_EQ(counter.mode(), 2);
}

TEST(Regression, RecoversExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};
  const LinearFit fit = fit_linear(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, RejectsDegenerateInput) {
  EXPECT_THROW(fit_linear(std::vector<double>{1.0}, std::vector<double>{2.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_linear(std::vector<double>{1.0, 1.0},
                          std::vector<double>{2.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_linear(std::vector<double>{1.0, 2.0},
                          std::vector<double>{2.0}),
               std::invalid_argument);
}

TEST(Regression, LogLogRecoversPowerLaw) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 1.0; x <= 64.0; x *= 2.0) {
    xs.push_back(x);
    ys.push_back(5.0 * std::pow(x, 1.7));
  }
  const LinearFit fit = fit_loglog(xs, ys);
  EXPECT_NEAR(fit.slope, 1.7, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 5.0, 1e-8);
}

TEST(Regression, ExponentialRecoversDecayRate) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int t = 0; t < 20; ++t) {
    xs.push_back(static_cast<double>(t));
    ys.push_back(3.0 * std::pow(0.9, t));
  }
  const LinearFit fit = fit_exponential(xs, ys);
  EXPECT_NEAR(std::exp(fit.slope), 0.9, 1e-10);
}

TEST(Regression, LogFitsRejectNonPositiveValues) {
  EXPECT_THROW(fit_loglog(std::vector<double>{1.0, 0.0},
                          std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(fit_exponential(std::vector<double>{1.0, 2.0},
                               std::vector<double>{1.0, -2.0}),
               std::invalid_argument);
}

TEST(Ecdf, BasicProbabilities) {
  const std::vector<double> samples{1.0, 2.0, 3.0, 4.0};
  const Ecdf ecdf(samples);
  EXPECT_DOUBLE_EQ(ecdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.at(10.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.tail_at_least(3.0), 0.5);
  EXPECT_DOUBLE_EQ(ecdf.tail_at_least(4.5), 0.0);
}

TEST(Ecdf, QuantilesInterpolate) {
  const std::vector<double> samples{0.0, 10.0};
  const Ecdf ecdf(samples);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(ecdf.quantile(1.0), 10.0);
  EXPECT_THROW(ecdf.quantile(1.5), std::invalid_argument);
}

TEST(Ecdf, RejectsEmptySamples) {
  EXPECT_THROW(Ecdf(std::vector<double>{}), std::invalid_argument);
}

}  // namespace
}  // namespace divlib
