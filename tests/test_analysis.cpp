#include "graph/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "spectral/lambda.hpp"

namespace divlib {
namespace {

TEST(Components, SingleComponent) {
  const ComponentInfo info = connected_components(make_cycle(6));
  EXPECT_EQ(info.num_components, 1u);
  EXPECT_EQ(info.sizes[0], 6u);
  for (const VertexId id : info.component_of) {
    EXPECT_EQ(id, 0u);
  }
}

TEST(Components, MultipleComponentsAndIsolates) {
  const Graph g(6, {{0, 1}, {2, 3}});
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.num_components, 4u);  // {0,1}, {2,3}, {4}, {5}
  EXPECT_EQ(info.component_of[0], info.component_of[1]);
  EXPECT_NE(info.component_of[0], info.component_of[2]);
  EXPECT_EQ(info.sizes[info.component_of[4]], 1u);
}

TEST(Bfs, DistancesOnPath) {
  const auto distance = bfs_distances(make_path(5), 0);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(distance[v], v);
  }
  EXPECT_THROW(bfs_distances(make_path(5), 9), std::invalid_argument);
}

TEST(Bfs, UnreachableMarked) {
  const Graph g(4, {{0, 1}});
  const auto distance = bfs_distances(g, 0);
  EXPECT_EQ(distance[1], 1u);
  EXPECT_EQ(distance[2], kUnreachable);
}

TEST(Diameter, KnownValues) {
  EXPECT_EQ(diameter(make_path(10)), 9u);
  EXPECT_EQ(diameter(make_cycle(10)), 5u);
  EXPECT_EQ(diameter(make_complete(10)), 1u);
  EXPECT_EQ(diameter(make_star(10)), 2u);
  EXPECT_EQ(diameter(make_hypercube(4)), 4u);
}

TEST(Diameter, ThrowsOnDisconnected) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW(diameter(g), std::invalid_argument);
}

TEST(DegreeHistogram, Star) {
  const auto histogram = degree_histogram(make_star(6));
  ASSERT_EQ(histogram.size(), 6u);
  EXPECT_EQ(histogram[1], 5u);
  EXPECT_EQ(histogram[5], 1u);
  EXPECT_EQ(histogram[0], 0u);
}

TEST(EdgeMeasure, OrderedPairFractions) {
  // Path 0-1-2: 2m = 4.
  const Graph g = make_path(3);
  const std::vector<bool> left{true, false, false};
  const std::vector<bool> middle{false, true, false};
  // Ordered pairs from {0} to {1}: exactly one (0,1) -> 1/4.
  EXPECT_DOUBLE_EQ(edge_measure(g, left, middle), 0.25);
  // Q is symmetric (detailed balance).
  EXPECT_DOUBLE_EQ(edge_measure(g, middle, left), 0.25);
  // No edge inside {0}.
  EXPECT_DOUBLE_EQ(edge_measure(g, left, left), 0.0);
}

TEST(Conductance, BarbellBridgeIsTheBottleneck) {
  const Graph g = make_barbell(8);
  std::vector<bool> left(g.num_vertices(), false);
  for (VertexId v = 0; v < 8; ++v) {
    left[v] = true;
  }
  // One bridge edge out of m = 57: Q(S,S^C) = 1/114, pi(S) ~ 1/2.
  const double phi = conductance(g, left);
  EXPECT_NEAR(phi, (1.0 / 114.0) / (57.0 / 114.0), 1e-9);
}

TEST(Conductance, CompleteGraphIsHigh) {
  const Graph g = make_complete(16);
  std::vector<bool> half(16, false);
  for (VertexId v = 0; v < 8; ++v) {
    half[v] = true;
  }
  EXPECT_GT(conductance(g, half), 0.5);
}

TEST(Conductance, RejectsDegenerateSets) {
  const Graph g = make_cycle(4);
  EXPECT_THROW(conductance(g, std::vector<bool>(4, true)), std::invalid_argument);
  EXPECT_THROW(conductance(g, std::vector<bool>(4, false)), std::invalid_argument);
  EXPECT_THROW(conductance(g, std::vector<bool>(3, true)), std::invalid_argument);
}

TEST(Conductance, EstimateFindsBarbellBottleneck) {
  const Graph g = make_barbell(10);
  Rng rng(1);
  const double estimate = estimate_graph_conductance(g, rng);
  // The BFS-ball sweep must find (nearly) the bridge cut.
  EXPECT_LT(estimate, 0.05);
  Rng rng2(2);
  EXPECT_GT(estimate_graph_conductance(make_complete(16), rng2), 0.3);
}

TEST(Triangles, KnownCounts) {
  EXPECT_EQ(triangle_count(make_complete(4)), 4u);
  EXPECT_EQ(triangle_count(make_complete(5)), 10u);
  EXPECT_EQ(triangle_count(make_cycle(3)), 1u);
  EXPECT_EQ(triangle_count(make_cycle(5)), 0u);
  EXPECT_EQ(triangle_count(make_star(6)), 0u);
  EXPECT_EQ(triangle_count(make_path(5)), 0u);
  // Barbell: two K_4 = 2 * 4 triangles; the bridge adds none.
  EXPECT_EQ(triangle_count(make_barbell(4)), 8u);
}

TEST(Clustering, GlobalCoefficientExtremes) {
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(make_complete(6)), 1.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(make_star(6)), 0.0);
  EXPECT_DOUBLE_EQ(global_clustering_coefficient(make_cycle(6)), 0.0);
}

TEST(Clustering, LocalCoefficient) {
  const Graph g = make_barbell(4);
  // Non-bridge clique vertices: all 3 neighbors mutually adjacent.
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, 1), 1.0);
  // Bridge endpoint 0: neighbors {1,2,3,4}; 3 of 6 pairs adjacent.
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(g, 0), 0.5);
  // Degree-1 vertices have coefficient 0.
  EXPECT_DOUBLE_EQ(local_clustering_coefficient(make_star(4), 1), 0.0);
}

TEST(Clustering, SmallWorldBeatsGnpAtEqualDensity) {
  Rng rng(9);
  const Graph ws = make_watts_strogatz(200, 4, 0.1, rng);
  const Graph gnp = make_connected_gnp(200, 8.0 / 199.0, rng);
  EXPECT_GT(global_clustering_coefficient(ws),
            5.0 * global_clustering_coefficient(gnp));
}

TEST(MixingLemma, HoldsOnExpanders) {
  // Lemma 9: |Q(S,U) - pi(S)pi(U)| <= lambda sqrt(pi(S)pi(S^C)pi(U)pi(U^C)).
  Rng rng(3);
  const Graph graphs[] = {make_complete(32), make_hypercube(5),
                          make_connected_random_regular(64, 8, rng),
                          make_connected_gnp(64, 0.2, rng)};
  for (const Graph& g : graphs) {
    const double lambda = second_eigenvalue(g);
    Rng set_rng(7);
    for (int trial = 0; trial < 50; ++trial) {
      std::vector<bool> s(g.num_vertices());
      std::vector<bool> u(g.num_vertices());
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        s[v] = set_rng.bernoulli(0.4);
        u[v] = set_rng.bernoulli(0.6);
      }
      const double ratio = mixing_lemma_ratio(g, s, u, lambda);
      EXPECT_LE(ratio, 1.0 + 1e-9) << g.summary() << " trial " << trial;
    }
  }
}

TEST(MixingLemma, TightOnDesignedCut) {
  // On the barbell the bridge cut nearly saturates the bound
  // (lambda ~ 1, Q(S,S) far above pi(S)^2).
  const Graph g = make_barbell(8);
  const double lambda = second_eigenvalue(g);
  std::vector<bool> left(g.num_vertices(), false);
  for (VertexId v = 0; v < 8; ++v) {
    left[v] = true;
  }
  const double ratio = mixing_lemma_ratio(g, left, left, lambda);
  EXPECT_GT(ratio, 0.8);
  EXPECT_LE(ratio, 1.0 + 1e-9);
}

TEST(MixingLemma, DegenerateSetsGiveZero) {
  const Graph g = make_cycle(4);
  EXPECT_DOUBLE_EQ(
      mixing_lemma_ratio(g, std::vector<bool>(4, false), std::vector<bool>(4, true), 0.5),
      0.0);
  EXPECT_THROW(
      mixing_lemma_ratio(g, std::vector<bool>(4, true), std::vector<bool>(4, true), 0.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace divlib
