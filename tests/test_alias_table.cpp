#include "rng/alias_table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace divlib {
namespace {

TEST(AliasTable, RejectsEmptyAndInvalidWeights) {
  EXPECT_THROW(AliasTable(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(AliasTable(std::vector<double>{1.0, -0.5}), std::invalid_argument);
}

TEST(AliasTable, SingletonAlwaysReturnsZero) {
  AliasTable table(std::vector<double>{3.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.sample(rng), 0u);
  }
}

TEST(AliasTable, NormalizesProbabilities) {
  AliasTable table(std::vector<double>{1.0, 3.0});
  EXPECT_DOUBLE_EQ(table.probability_of(0), 0.25);
  EXPECT_DOUBLE_EQ(table.probability_of(1), 0.75);
  EXPECT_DOUBLE_EQ(table.probability_of(99), 0.0);
}

TEST(AliasTable, ZeroWeightEntriesNeverSampled) {
  AliasTable table(std::vector<double>{0.0, 1.0, 0.0, 2.0});
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const std::size_t index = table.sample(rng);
    EXPECT_TRUE(index == 1 || index == 3);
  }
}

TEST(AliasTable, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng rng(3);
  constexpr int kSamples = 200000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[table.sample(rng)];
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0;
    const double observed = static_cast<double>(counts[i]) / kSamples;
    EXPECT_NEAR(observed, expected, 0.01) << "index " << i;
  }
}

TEST(AliasTable, UniformWeightsGiveUniformSamples) {
  const std::vector<double> weights(10, 1.0);
  AliasTable table(weights);
  Rng rng(5);
  constexpr int kSamples = 100000;
  std::vector<int> counts(10, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[table.sample(rng)];
  }
  for (const int count : counts) {
    EXPECT_NEAR(count, kSamples / 10.0, 5.0 * std::sqrt(kSamples / 10.0));
  }
}

TEST(AliasTable, HandlesHighlySkewedWeights) {
  AliasTable table(std::vector<double>{1e-9, 1.0});
  Rng rng(7);
  int zero_hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (table.sample(rng) == 0) {
      ++zero_hits;
    }
  }
  EXPECT_LT(zero_hits, 5);
}

TEST(AliasTable, SizeReportsNumberOfCategories) {
  AliasTable table(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_EQ(table.size(), 3u);
  EXPECT_FALSE(table.empty());
  EXPECT_TRUE(AliasTable().empty());
}

}  // namespace
}  // namespace divlib
