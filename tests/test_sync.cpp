#include <gtest/gtest.h>

#include <numeric>

#include "core/sync_process.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "engine/sync_engine.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

TEST(SyncProcess, Names) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(SyncDivProcess(g).name(), "sync-div");
  EXPECT_EQ(SyncPullVoting(g).name(), "sync-pull");
  EXPECT_EQ(SyncMedianVoting(g).name(), "sync-median");
}

TEST(SyncProcess, RejectIsolatedVertices) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(SyncDivProcess{g}, std::invalid_argument);
  EXPECT_THROW(SyncPullVoting{g}, std::invalid_argument);
  EXPECT_THROW(SyncMedianVoting{g}, std::invalid_argument);
}

TEST(SyncDiv, RoundMovesEveryVertexAtMostOne) {
  const Graph g = make_complete(16);
  Rng rng(1);
  OpinionState state(g, uniform_random_opinions(16, 1, 7, rng));
  SyncDivProcess process(g);
  for (int round = 0; round < 200; ++round) {
    const std::vector<Opinion> before(state.opinions().begin(),
                                      state.opinions().end());
    process.round(state, rng);
    for (VertexId v = 0; v < 16; ++v) {
      EXPECT_LE(std::abs(state.opinion(v) - before[v]), 1);
    }
  }
}

TEST(SyncDiv, UsesSnapshotSemantics) {
  // On P_3 with opinions 1-2-3 and a synchronous round, the middle vertex
  // moves based on the OLD endpoint values, and both endpoints move toward
  // the OLD middle value 2, so after one round every vertex is 2 only if all
  // sampled neighbors say so; endpoints deterministically become 2.
  const Graph g = make_path(3);
  OpinionState state(g, {1, 2, 3});
  SyncDivProcess process(g);
  Rng rng(2);
  process.round(state, rng);
  EXPECT_EQ(state.opinion(0), 2);  // only neighbor held 2
  EXPECT_EQ(state.opinion(2), 2);
  // Middle observed 1 or 3 and moved accordingly; never stays 2 from old
  // values 1/3.
  EXPECT_NE(state.opinion(1), 2);
}

TEST(SyncDiv, RangeNeverExpandsAndConsensusAbsorbs) {
  const Graph g = make_complete(24);
  Rng rng(3);
  OpinionState state(g, uniform_random_opinions(24, 1, 6, rng));
  SyncDivProcess process(g);
  Opinion lo = state.min_active();
  Opinion hi = state.max_active();
  for (int round = 0; round < 400; ++round) {
    process.round(state, rng);
    EXPECT_GE(state.min_active(), lo);
    EXPECT_LE(state.max_active(), hi);
    lo = state.min_active();
    hi = state.max_active();
  }
}

TEST(SyncDiv, SumIsRoundMartingaleOnRegularGraphs) {
  const Graph g = make_cycle(24);
  constexpr int kReplicas = 600;
  constexpr int kRounds = 50;
  const auto deltas = run_replicas<double>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        OpinionState state(g, uniform_random_opinions(24, 1, 7, rng));
        const double s0 = static_cast<double>(state.sum());
        SyncDivProcess process(g);
        for (int round = 0; round < kRounds; ++round) {
          process.round(state, rng);
        }
        return static_cast<double>(state.sum()) - s0;
      },
      {.master_seed = 31});
  const double drift =
      std::accumulate(deltas.begin(), deltas.end(), 0.0) / kReplicas;
  // Per round |dS| <= n; empirical stddev is ~sqrt(n * rounds).
  EXPECT_NEAR(drift, 0.0, 6.0);
}

TEST(SyncEngine, RunsToConsensusOnExpander) {
  Rng graph_rng(5);
  const Graph g = make_connected_random_regular(64, 8, graph_rng);
  Rng rng(6);
  OpinionState state(g, uniform_random_opinions(64, 1, 5, rng));
  SyncDivProcess process(g);
  SyncRunOptions options;
  options.max_rounds = 500000;
  const SyncRunResult result = run_sync(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  ASSERT_TRUE(result.winner.has_value());
  EXPECT_GE(*result.winner, 1);
  EXPECT_LE(*result.winner, 5);
}

TEST(SyncEngine, TwoAdjacentStopAndTrace) {
  const Graph g = make_complete(32);
  Rng rng(7);
  OpinionState state(g, uniform_random_opinions(32, 1, 8, rng));
  SyncDivProcess process(g);
  SyncRunOptions options;
  options.stop = StopKind::kTwoAdjacent;
  options.trace_stride = 2;
  options.max_rounds = 100000;
  const SyncRunResult result = run_sync(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  EXPECT_LE(result.max_active - result.min_active, 1);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.samples().front().step, 0u);
  EXPECT_EQ(result.trace.samples().back().step, result.rounds);
}

TEST(SyncEngine, RoundCapReportsIncomplete) {
  const Graph g = make_complete(32);
  Rng rng(8);
  OpinionState state(g, uniform_random_opinions(32, 1, 8, rng));
  SyncDivProcess process(g);
  SyncRunOptions options;
  options.max_rounds = 1;
  const SyncRunResult result = run_sync(process, state, rng, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds, 1u);
}

TEST(SyncPull, ConvergesAndPreservesValueSet) {
  const Graph g = make_complete(16);
  OpinionState state(g, {1, 1, 1, 1, 5, 5, 5, 5, 9, 9, 9, 9, 9, 9, 9, 9});
  SyncPullVoting process(g);
  Rng rng(9);
  SyncRunOptions options;
  options.max_rounds = 100000;
  const SyncRunResult result = run_sync(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  const Opinion w = *result.winner;
  EXPECT_TRUE(w == 1 || w == 5 || w == 9);
}

TEST(SyncMedian, FindsTheMedianOnCompleteGraph) {
  const Graph g = make_complete(90);
  int median_wins = 0;
  constexpr int kTrials = 30;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(100 + trial);
    // 30 x 1, 31 x 2, 29 x 30: median 2.
    OpinionState state(
        g, opinions_with_counts(
               90, 1,
               [] {
                 std::vector<VertexId> counts(30, 0);
                 counts[0] = 30;
                 counts[1] = 31;
                 counts[29] = 29;
                 return counts;
               }(),
               rng));
    SyncMedianVoting process(g);
    SyncRunOptions options;
    options.max_rounds = 100000;
    const SyncRunResult result = run_sync(process, state, rng, options);
    if (result.completed && result.winner.value_or(-1) <= 2) {
      ++median_wins;
    }
  }
  EXPECT_GT(median_wins, kTrials * 8 / 10);
}

TEST(SyncDiv, OneRoundMatchesNAsyncStepsInScale) {
  // The standard time correspondence: one synchronous round ~ n asynchronous
  // steps.  Reduction round-count on K_n should be ~ async steps / n within
  // a small constant factor.
  const Graph g = make_complete(64);
  Rng rng(11);
  Summary rounds;
  for (int trial = 0; trial < 20; ++trial) {
    OpinionState state(g, ramp_opinions(64, 1, 8));
    SyncDivProcess process(g);
    SyncRunOptions options;
    options.stop = StopKind::kTwoAdjacent;
    options.max_rounds = 100000;
    const SyncRunResult result = run_sync(process, state, rng, options);
    ASSERT_TRUE(result.completed);
    rounds.add(static_cast<double>(result.rounds));
  }
  // Async reduction on K_64/k=8 takes ~1000-4000 steps (EXP-2/3 scale);
  // the sync process should take the same divided by n ~ 15-60 rounds.
  EXPECT_GT(rounds.mean(), 3.0);
  EXPECT_LT(rounds.mean(), 500.0);
}

}  // namespace
}  // namespace divlib
