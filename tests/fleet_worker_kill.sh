#!/usr/bin/env bash
# Fleet crash-barrier drill: run a process-isolated campaign, SIGKILL one
# random live worker mid-flight and SIGSEGV another, and require
#   * the campaign itself survives (exit 0, or 5 if the murdered replica got
#     quarantined after repeated deaths -- never a crash of the parent), and
#   * every replica it journaled is bit-identical to an undisturbed run.
# Exits 77 (CTest SKIP_RETURN_CODE) where the drill cannot run.
set -u

DIVSIM="${1:-}"
if [[ -z "${DIVSIM}" || ! -x "${DIVSIM}" ]]; then
  echo "SKIP: divsim binary not provided or not executable" >&2
  exit 77
fi
if ! kill -0 $$ 2>/dev/null; then
  echo "SKIP: cannot deliver signals in this environment" >&2
  exit 77
fi
if [[ "$(uname -s)" != "Linux" ]]; then
  # Worker discovery below reads /proc; the fleet itself is POSIX, but the
  # drill's process archaeology is not.
  echo "SKIP: drill requires Linux /proc for worker discovery" >&2
  exit 77
fi

WORK="$(mktemp -d)" || exit 77
trap 'rm -rf "${WORK}"' EXIT

# Slow-mixing graph so each replica takes a few hundred ms: the kills land
# while real work is in flight, and a full campaign still takes seconds.
ARGS=(run --graph path:1024 --k 9 --stop consensus --max-steps 20000000
      --replicas 24 --seed 7 --isolation process --workers 3
      --min-success 0.8)

# Children of a pid, via /proc (pgrep -P is not always installed).
workers_of() {
  local parent="$1" pid
  for pid in /proc/[0-9]*; do
    pid="${pid#/proc/}"
    [[ -r "/proc/${pid}/stat" ]] || continue
    local stat ppid
    stat="$(cat "/proc/${pid}/stat" 2>/dev/null)" || continue
    # Field 4 of /proc/pid/stat is the ppid; comm (field 2) may hold spaces,
    # so parse from after the closing paren.
    ppid="$(awk '{print $2}' <<< "${stat##*) }")"
    if [[ "${ppid}" == "${parent}" ]]; then
      echo "${pid}"
    fi
  done
}

# Baseline: the same campaign, undisturbed.
"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/baseline" \
    > "${WORK}/baseline.out" 2>&1
baseline_rc=$?
if [[ ${baseline_rc} -ne 0 ]]; then
  echo "FAIL: undisturbed baseline exited ${baseline_rc}" >&2
  cat "${WORK}/baseline.out" >&2
  exit 1
fi

# Victim: same campaign; murder two of its workers while it runs.
"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/victim" \
    > "${WORK}/victim.out" 2>&1 &
victim_pid=$!

kills_landed=0
for signal in KILL SEGV; do
  for _ in $(seq 1 500); do
    if ! kill -0 "${victim_pid}" 2>/dev/null; then
      break 2  # campaign already finished; drill is (partially) vacuous
    fi
    mapfile -t workers < <(workers_of "${victim_pid}")
    if [[ "${#workers[@]}" -ge 1 ]]; then
      target="${workers[RANDOM % ${#workers[@]}]}"
      if kill "-${signal}" "${target}" 2>/dev/null; then
        kills_landed=$((kills_landed + 1))
        echo "sent SIG${signal} to worker ${target}" >&2
        sleep 0.4  # let the fleet reap + respawn before the next murder
        break
      fi
    fi
    sleep 0.01
  done
done

wait "${victim_pid}"
victim_rc=$?
if [[ ${victim_rc} -ne 0 && ${victim_rc} -ne 5 ]]; then
  echo "FAIL: victim campaign exited ${victim_rc} (want 0 ok / 5 degraded)" >&2
  cat "${WORK}/victim.out" >&2
  exit 1
fi
if [[ ${kills_landed} -eq 0 ]]; then
  echo "SKIP: campaign finished before any worker could be killed" >&2
  exit 77
fi

# Bit-identity of the crash barrier.  The campaign runs with the default
# attempt budget of 1, so a murdered replica is quarantined (and marked so in
# the journal dump) rather than retried on a different seed stream -- which
# means every COMPLETED victim replica ran attempt 0, exactly like the
# baseline, and must match it byte for byte.
"${DIVSIM}" journal --dir "${WORK}/baseline" \
    | grep '^replica ' > "${WORK}/baseline.records"
"${DIVSIM}" journal --dir "${WORK}/victim" \
    | grep '^replica ' | grep -v 'QUARANTINED' > "${WORK}/victim.records"
quarantined=$("${DIVSIM}" journal --dir "${WORK}/victim" \
    | grep -c 'QUARANTINED')
if ! grep -F -x -f "${WORK}/baseline.records" "${WORK}/victim.records" \
    | diff -u - "${WORK}/victim.records"; then
  echo "FAIL: a healthy victim replica diverged from the baseline" >&2
  exit 1
fi

victim_count=$(wc -l < "${WORK}/victim.records")
if [[ $((victim_count + quarantined)) -ne 24 ]]; then
  echo "FAIL: ${victim_count} completed + ${quarantined} quarantined != 24" >&2
  cat "${WORK}/victim.out" >&2
  exit 1
fi
if [[ "${quarantined}" -gt 2 ]]; then
  # Each murder costs at most one replica; more means collateral damage.
  echo "FAIL: ${quarantined} replicas quarantined after 2 kills" >&2
  exit 1
fi
# Exit-code contract: clean when every murdered worker was idle (or its
# result had already landed), degraded when a replica was lost.
if [[ "${quarantined}" -eq 0 && ${victim_rc} -ne 0 ]]; then
  echo "FAIL: no quarantines but campaign exited ${victim_rc}" >&2
  exit 1
fi
if [[ "${quarantined}" -gt 0 && ${victim_rc} -ne 5 ]]; then
  echo "FAIL: ${quarantined} quarantine(s) but exit ${victim_rc} (want 5)" >&2
  exit 1
fi

echo "OK: ${kills_landed} worker(s) murdered, campaign exited ${victim_rc}," \
     "${victim_count}/24 healthy replicas bit-identical, ${quarantined}" \
     "quarantined"
exit 0
