#include "io/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace divlib {
namespace {

TEST(Csv, WritesPlainFields) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
  EXPECT_EQ(csv.rows_written(), 1u);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(CsvWriter::escape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(CsvWriter::escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesNumericRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row(std::vector<double>{1.5, 2.25}, 2);
  EXPECT_EQ(out.str(), "1.50,2.25\n");
}

TEST(Csv, MultipleRowsAccumulate) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row(std::vector<std::string>{"h1", "h2"});
  csv.write_row(std::vector<std::string>{"x", "y"});
  EXPECT_EQ(out.str(), "h1,h2\nx,y\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(Csv, EmptyRowProducesBlankLine) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.write_row(std::vector<std::string>{});
  EXPECT_EQ(out.str(), "\n");
}

}  // namespace
}  // namespace divlib
