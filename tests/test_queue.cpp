// The durable campaign queue: record codec, replay state machine, the
// flock-per-operation service (admission, dedup, leases, expiry, drain),
// crash-point injection on the queue journal itself, and the coordinator
// dispatch loop.
#include "queue/queue_service.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "io/failpoint.hpp"
#include "io/journal.hpp"
#include "queue/coordinator.hpp"
#include "queue/queue_records.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;

// --- records ---------------------------------------------------------------

TEST(QueueRecordTest, PhaseNamesRoundTrip) {
  const CampaignPhase phases[] = {
      CampaignPhase::kQueued,   CampaignPhase::kLeased,
      CampaignPhase::kRunning,  CampaignPhase::kComplete,
      CampaignPhase::kDegraded, CampaignPhase::kFailed,
      CampaignPhase::kCancelled,
  };
  for (const CampaignPhase phase : phases) {
    EXPECT_EQ(parse_campaign_phase(to_string(phase)), phase);
  }
  EXPECT_THROW(parse_campaign_phase("limbo"), std::invalid_argument);
  EXPECT_FALSE(phase_is_terminal(CampaignPhase::kQueued));
  EXPECT_FALSE(phase_is_terminal(CampaignPhase::kLeased));
  EXPECT_FALSE(phase_is_terminal(CampaignPhase::kRunning));
  EXPECT_TRUE(phase_is_terminal(CampaignPhase::kComplete));
  EXPECT_TRUE(phase_is_terminal(CampaignPhase::kDegraded));
  EXPECT_TRUE(phase_is_terminal(CampaignPhase::kFailed));
  EXPECT_TRUE(phase_is_terminal(CampaignPhase::kCancelled));
}

TEST(QueueRecordTest, EveryKindRoundTrips) {
  std::vector<QueueRecord> records;
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kSubmit;
    r.campaign = 3;
    r.fingerprint = 0xDEADBEEFu;
    r.text = "--graph=complete:64 --rounds=100";
    records.push_back(r);
  }
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kLease;
    r.campaign = 3;
    r.lease = 7;
    r.deadline_ms = 1'700'000'123'456;
    records.push_back(r);
  }
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kRenew;
    r.campaign = 3;
    r.lease = 7;
    r.deadline_ms = 1'700'000'999'999;
    records.push_back(r);
  }
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kRunning;
    r.campaign = 3;
    r.lease = 7;
    records.push_back(r);
  }
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kRequeue;
    r.campaign = 3;
    r.lease = 7;
    r.text = "lease 7 expired (deadline passed)";
    records.push_back(r);
  }
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kFinish;
    r.campaign = 3;
    r.lease = 8;
    r.phase = CampaignPhase::kDegraded;
    r.text = "2 of 64 replicas quarantined";
    records.push_back(r);
  }
  {
    QueueRecord r;
    r.kind = QueueRecord::Kind::kCancel;
    r.campaign = 4;
    r.text = "operator drain";
    records.push_back(r);
  }
  for (const QueueRecord& original : records) {
    const QueueRecord decoded = decode_queue_record(
        encode_queue_record(original));
    EXPECT_EQ(decoded.kind, original.kind);
    EXPECT_EQ(decoded.campaign, original.campaign);
    EXPECT_EQ(decoded.lease, original.lease);
    EXPECT_EQ(decoded.fingerprint, original.fingerprint);
    EXPECT_EQ(decoded.deadline_ms, original.deadline_ms);
    EXPECT_EQ(decoded.phase, original.phase);
    EXPECT_EQ(decoded.text, original.text);
  }
}

TEST(QueueRecordTest, RejectsMalformedLines) {
  EXPECT_THROW(decode_queue_record(""), std::invalid_argument);
  EXPECT_THROW(decode_queue_record("bogus 1 2"), std::invalid_argument);
  EXPECT_THROW(decode_queue_record("submit"), std::invalid_argument);
  EXPECT_THROW(decode_queue_record("submit x deadbeef cfg"),
               std::invalid_argument);
  EXPECT_THROW(decode_queue_record("lease 1 2"), std::invalid_argument);
  EXPECT_THROW(decode_queue_record("running 1"), std::invalid_argument);
  EXPECT_THROW(decode_queue_record("finish 1 2 limbo detail"),
               std::invalid_argument);
}

// --- replay ----------------------------------------------------------------

std::string submit_line(std::uint64_t id, const std::string& config) {
  QueueRecord r;
  r.kind = QueueRecord::Kind::kSubmit;
  r.campaign = id;
  r.fingerprint = 0x1234ABCDu;
  r.text = config;
  return encode_queue_record(r);
}

TEST(QueueReplayTest, FoldsALifecycle) {
  const QueueView view = replay_queue({
      submit_line(1, "--alpha=1"),
      submit_line(2, "--beta=2"),
      "lease 1 1 5000",
      "running 1 1",
      "finish 1 1 complete all replicas finished",
  });
  ASSERT_EQ(view.campaigns.size(), 2u);
  EXPECT_EQ(view.campaigns[0].phase, CampaignPhase::kComplete);
  EXPECT_EQ(view.campaigns[0].note, "all replicas finished");
  EXPECT_EQ(view.campaigns[1].phase, CampaignPhase::kQueued);
  EXPECT_EQ(view.next_campaign_id, 3u);
  EXPECT_EQ(view.next_lease_id, 2u);
  EXPECT_TRUE(view.has_live_work());
  ASSERT_NE(view.oldest_queued(), nullptr);
  EXPECT_EQ(view.oldest_queued()->id, 2u);
}

TEST(QueueReplayTest, RequeueClearsTheLeaseAndCounts) {
  const QueueView view = replay_queue({
      submit_line(1, "--alpha=1"),
      "lease 1 1 5000",
      "requeue 1 1 lease 1 expired",
      "lease 1 2 9000",
  });
  ASSERT_EQ(view.campaigns.size(), 1u);
  EXPECT_EQ(view.campaigns[0].phase, CampaignPhase::kLeased);
  EXPECT_EQ(view.campaigns[0].lease, 2u);
  EXPECT_EQ(view.campaigns[0].requeues, 1u);
  EXPECT_EQ(view.next_lease_id, 3u);
}

TEST(QueueReplayTest, IllegalTransitionsThrowNamingTheRecord) {
  // Leasing a campaign that is already leased.
  try {
    replay_queue({submit_line(1, "c"), "lease 1 1 5000", "lease 1 2 6000"});
    FAIL() << "expected replay to reject a double lease";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("record 2"), std::string::npos)
        << error.what();
  }
  // Operations against a stale lease id.
  EXPECT_THROW(replay_queue({submit_line(1, "c"), "lease 1 1 5000",
                             "requeue 1 1 expired", "finish 1 1 complete x"}),
               std::runtime_error);
  EXPECT_THROW(replay_queue({submit_line(1, "c"), "lease 1 1 5000",
                             "renew 1 9 8000"}),
               std::runtime_error);
  // Running without holding a lease.
  EXPECT_THROW(replay_queue({submit_line(1, "c"), "running 1 1"}),
               std::runtime_error);
  // Cancel only applies to Queued campaigns.
  EXPECT_THROW(replay_queue({submit_line(1, "c"), "lease 1 1 5000",
                             "cancel 1 drain"}),
               std::runtime_error);
  // Duplicate campaign id.
  EXPECT_THROW(replay_queue({submit_line(1, "c"), submit_line(1, "d")}),
               std::runtime_error);
  // Lease ids must be fresh (monotonic): reusing one is a zombie write.
  EXPECT_THROW(replay_queue({submit_line(1, "c"), "lease 1 1 5000",
                             "requeue 1 1 expired", "lease 1 1 6000"}),
               std::runtime_error);
  // Terminal means terminal.
  EXPECT_THROW(replay_queue({submit_line(1, "c"), "lease 1 1 5000",
                             "finish 1 1 failed boom", "lease 1 2 7000"}),
               std::runtime_error);
}

// --- service ---------------------------------------------------------------

class QueueServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("divlib_queue_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override {
    disarm_io_failpoint();
    fs::remove_all(dir_);
  }

  QueueOptions options(std::size_t max_depth = 256,
                       std::int64_t lease_ms = 10'000) {
    QueueOptions opts;
    opts.directory = dir_.string();
    opts.max_depth = max_depth;
    opts.lease_ms = lease_ms;
    opts.now_ms = [this] { return now_ms_; };
    return opts;
  }

  fs::path dir_;
  std::int64_t now_ms_ = 1'000'000;  // fake wall clock, advanced by tests
};

TEST_F(QueueServiceTest, SubmitAssignsIdsAndDedupsLiveConfigs) {
  CampaignQueue queue(options());
  const SubmitOutcome first = queue.submit("--graph=cycle:32 --rounds=50");
  EXPECT_EQ(first.campaign, 1u);
  EXPECT_FALSE(first.duplicate);
  const SubmitOutcome again = queue.submit("--graph=cycle:32 --rounds=50");
  EXPECT_EQ(again.campaign, 1u);
  EXPECT_TRUE(again.duplicate);
  const SubmitOutcome other = queue.submit("--graph=cycle:64 --rounds=50");
  EXPECT_EQ(other.campaign, 2u);
  EXPECT_FALSE(other.duplicate);
  // Once the campaign is terminal the same config is fresh work again.
  const auto leased = queue.lease_next();
  ASSERT_TRUE(leased.has_value());
  queue.finish(leased->id, leased->lease, CampaignPhase::kComplete, "done");
  const SubmitOutcome resubmit = queue.submit("--graph=cycle:32 --rounds=50");
  EXPECT_EQ(resubmit.campaign, 3u);
  EXPECT_FALSE(resubmit.duplicate);
}

TEST_F(QueueServiceTest, RefusesLoudlyAtMaxDepth) {
  CampaignQueue queue(options(/*max_depth=*/2));
  queue.submit("--a=1");
  queue.submit("--a=2");
  EXPECT_THROW(queue.submit("--a=3"), QueueRefusal);
  // Leasing one frees a Queued slot: admission tracks depth, not history.
  ASSERT_TRUE(queue.lease_next().has_value());
  EXPECT_EQ(queue.submit("--a=3").campaign, 3u);
}

TEST_F(QueueServiceTest, ExpiredLeaseIsRequeuedAndStaleHolderRejected) {
  CampaignQueue queue(options(256, /*lease_ms=*/5'000));
  queue.submit("--a=1");
  const auto first = queue.lease_next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->lease, 1u);
  EXPECT_EQ(first->lease_deadline_ms, now_ms_ + 5'000);
  queue.mark_running(first->id, first->lease);
  // The coordinator dies: no renewals.  Before the deadline nothing moves...
  now_ms_ += 4'999;
  EXPECT_EQ(queue.requeue_expired(), 0u);
  EXPECT_FALSE(queue.lease_next().has_value());
  // ...at the deadline the campaign goes back to Queued and is re-leased.
  now_ms_ += 1;
  const auto second = queue.lease_next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->id, first->id);
  EXPECT_EQ(second->lease, 2u);
  EXPECT_EQ(second->requeues, 1u);
  // The zombie's lease is dead: every holder operation refuses.
  EXPECT_THROW(queue.renew(first->id, first->lease), StaleLease);
  EXPECT_THROW(queue.mark_running(first->id, first->lease), StaleLease);
  EXPECT_THROW(queue.finish(first->id, first->lease, CampaignPhase::kComplete,
                            "zombie verdict"),
               StaleLease);
  // The new holder proceeds normally.
  queue.mark_running(second->id, second->lease);
  queue.finish(second->id, second->lease, CampaignPhase::kComplete, "done");
  EXPECT_EQ(queue.snapshot().view.count(CampaignPhase::kComplete), 1u);
}

TEST_F(QueueServiceTest, RenewPushesTheDeadline) {
  CampaignQueue queue(options(256, /*lease_ms=*/5'000));
  queue.submit("--a=1");
  const auto leased = queue.lease_next();
  ASSERT_TRUE(leased.has_value());
  now_ms_ += 3'000;
  queue.renew(leased->id, leased->lease);  // deadline now 1'009'000
  now_ms_ += 4'000;                        // past the ORIGINAL deadline
  EXPECT_EQ(queue.requeue_expired(), 0u);
  now_ms_ += 2'000;                        // past the renewed deadline
  EXPECT_EQ(queue.requeue_expired(), 1u);
  EXPECT_EQ(queue.snapshot().view.count(CampaignPhase::kQueued), 1u);
}

TEST_F(QueueServiceTest, ReleaseRequeuesForALaterCoordinator) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  const auto leased = queue.lease_next();
  ASSERT_TRUE(leased.has_value());
  queue.mark_running(leased->id, leased->lease);
  queue.release(leased->id, leased->lease, "operator cancel");
  const QueueSnapshot snap = queue.snapshot();
  ASSERT_EQ(snap.view.campaigns.size(), 1u);
  EXPECT_EQ(snap.view.campaigns[0].phase, CampaignPhase::kQueued);
  EXPECT_EQ(snap.view.campaigns[0].note, "operator cancel");
  EXPECT_EQ(snap.view.campaigns[0].requeues, 1u);
}

TEST_F(QueueServiceTest, DrainCancelsQueuedButNotLeasedCampaigns) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  queue.submit("--a=2");
  queue.submit("--a=3");
  ASSERT_TRUE(queue.lease_next().has_value());  // campaign 1 leaves Queued
  EXPECT_EQ(queue.drain("operator drain"), 2u);
  const QueueSnapshot snap = queue.snapshot();
  EXPECT_EQ(snap.view.count(CampaignPhase::kCancelled), 2u);
  EXPECT_EQ(snap.view.count(CampaignPhase::kLeased), 1u);
  EXPECT_EQ(queue.drain("again"), 0u);  // idempotent on an empty queue
}

TEST_F(QueueServiceTest, StateSurvivesReopeningTheDirectory) {
  {
    CampaignQueue queue(options());
    queue.submit("--a=1");
    queue.submit("--a=2");
    const auto leased = queue.lease_next();
    ASSERT_TRUE(leased.has_value());
    queue.finish(leased->id, leased->lease, CampaignPhase::kDegraded,
                 "1 replica quarantined");
  }
  CampaignQueue reopened(options());
  const QueueSnapshot snap = reopened.snapshot();
  ASSERT_EQ(snap.view.campaigns.size(), 2u);
  EXPECT_EQ(snap.view.campaigns[0].phase, CampaignPhase::kDegraded);
  EXPECT_EQ(snap.view.campaigns[0].note, "1 replica quarantined");
  EXPECT_EQ(snap.view.campaigns[1].phase, CampaignPhase::kQueued);
  EXPECT_EQ(snap.view.next_campaign_id, 3u);
  EXPECT_EQ(reopened.submit("--a=3").campaign, 3u);
}

TEST_F(QueueServiceTest, ReopeningATornQueueReportsItUntilAMutationHeals) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  queue.submit("--a=2");
  // Chop into the last frame: a crashed writer's torn tail.
  const std::filesystem::path journal =
      std::filesystem::path(dir_) / "queue.journal";
  std::filesystem::resize_file(journal,
                               std::filesystem::file_size(journal) - 3);
  // Reopening must not heal -- `status` is a read and reports the tear.
  CampaignQueue reopened(options());
  const QueueSnapshot torn_snap = reopened.snapshot();
  EXPECT_TRUE(torn_snap.torn);
  ASSERT_EQ(torn_snap.view.campaigns.size(), 1u);  // intact prefix only
  EXPECT_EQ(torn_snap.view.next_campaign_id, 2u);
  // The first mutation truncates the tail under its exclusive lock.
  EXPECT_EQ(reopened.submit("--a=2").campaign, 2u);
  const QueueSnapshot healed = reopened.snapshot();
  EXPECT_FALSE(healed.torn);
  EXPECT_EQ(healed.view.campaigns.size(), 2u);
}

TEST_F(QueueServiceTest, TornAppendAtEveryOffsetPreservesTheQueue) {
  // Size the frame the torn submit would have produced so the sweep covers
  // every byte of it: u32 len + u32 crc + the encoded record text.
  QueueRecord probe;
  probe.kind = QueueRecord::Kind::kSubmit;
  probe.campaign = 2;
  probe.fingerprint = 0xFFFFFFFFu;
  probe.text = "--graph=cycle:64 --rounds=10";
  const std::size_t frame = 8 + encode_queue_record(probe).size();
  for (std::size_t cut = 0; cut < frame; ++cut) {
    fs::remove_all(dir_);
    CampaignQueue queue(options());
    queue.submit("--graph=cycle:32 --rounds=10");
    arm_io_failpoint("journal", cut);
    EXPECT_THROW(queue.submit("--graph=cycle:64 --rounds=10"),
                 std::runtime_error)
        << "cut " << cut;
    disarm_io_failpoint();
    // The torn decision never happened: replay sees campaign 1 only, and
    // the next mutation truncates the tail and reuses the campaign id.
    const QueueSnapshot snap = queue.snapshot();
    ASSERT_EQ(snap.view.campaigns.size(), 1u) << "cut " << cut;
    EXPECT_EQ(snap.view.next_campaign_id, 2u) << "cut " << cut;
    const SubmitOutcome retry = queue.submit("--graph=cycle:64 --rounds=10");
    EXPECT_EQ(retry.campaign, 2u) << "cut " << cut;
    EXPECT_FALSE(retry.duplicate) << "cut " << cut;
    EXPECT_FALSE(queue.snapshot().torn) << "cut " << cut;
  }
}

// --- coordinator -----------------------------------------------------------

class QueueCoordinatorTest : public QueueServiceTest {};

TEST_F(QueueCoordinatorTest, DrivesQueuedCampaignsToCompletion) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  queue.submit("--a=2");
  std::vector<std::string> checkpoint_dirs;
  CoordinatorOptions copts;
  copts.wait_for_leases = false;
  const CoordinatorReport report = run_coordinator(
      queue,
      [&](const CampaignEntry& campaign, const std::string& checkpoint_dir) {
        checkpoint_dirs.push_back(checkpoint_dir);
        EXPECT_EQ(campaign.phase, CampaignPhase::kLeased);
        return CampaignPhase::kComplete;
      },
      copts);
  EXPECT_EQ(report.leased, 2u);
  EXPECT_EQ(report.completed, 2u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_FALSE(report.cancelled);
  ASSERT_EQ(checkpoint_dirs.size(), 2u);
  EXPECT_EQ(checkpoint_dirs[0], queue.campaign_directory(1));
  EXPECT_EQ(checkpoint_dirs[1], queue.campaign_directory(2));
  EXPECT_EQ(queue.snapshot().view.count(CampaignPhase::kComplete), 2u);
  EXPECT_FALSE(queue.snapshot().view.has_live_work());
}

TEST_F(QueueCoordinatorTest, RunnerExceptionBecomesAFailedVerdict) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  CoordinatorOptions copts;
  copts.wait_for_leases = false;
  const CoordinatorReport report = run_coordinator(
      queue,
      [](const CampaignEntry&, const std::string&) -> CampaignPhase {
        throw std::runtime_error("engine exploded");
      },
      copts);
  EXPECT_EQ(report.failed, 1u);
  const QueueSnapshot snap = queue.snapshot();
  ASSERT_EQ(snap.view.campaigns.size(), 1u);
  EXPECT_EQ(snap.view.campaigns[0].phase, CampaignPhase::kFailed);
  EXPECT_NE(snap.view.campaigns[0].note.find("engine exploded"),
            std::string::npos);
}

TEST_F(QueueCoordinatorTest, CancelledVerdictReleasesAndStopsTheLoop) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  queue.submit("--a=2");
  CoordinatorOptions copts;
  copts.wait_for_leases = false;
  const CoordinatorReport report = run_coordinator(
      queue,
      [](const CampaignEntry&, const std::string&) {
        return CampaignPhase::kCancelled;
      },
      copts);
  // Released, not finished -- and the loop must NOT spin re-leasing the
  // campaign it just put back.
  EXPECT_EQ(report.leased, 1u);
  EXPECT_EQ(report.released, 1u);
  EXPECT_TRUE(report.cancelled);
  const QueueSnapshot snap = queue.snapshot();
  EXPECT_EQ(snap.view.count(CampaignPhase::kQueued), 2u);
}

TEST_F(QueueCoordinatorTest, FiredTokenStopsBeforeLeasing) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  CancelToken token;
  token.request(CancelReason::kUser);
  CoordinatorOptions copts;
  copts.wait_for_leases = false;
  copts.cancel = &token;
  const CoordinatorReport report = run_coordinator(
      queue,
      [](const CampaignEntry&, const std::string&) {
        return CampaignPhase::kComplete;
      },
      copts);
  EXPECT_EQ(report.leased, 0u);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(queue.snapshot().view.count(CampaignPhase::kQueued), 1u);
}

TEST_F(QueueCoordinatorTest, MaxCampaignsBoundsTheDispatch) {
  CampaignQueue queue(options());
  queue.submit("--a=1");
  queue.submit("--a=2");
  queue.submit("--a=3");
  CoordinatorOptions copts;
  copts.wait_for_leases = false;
  copts.max_campaigns = 1;
  const CoordinatorReport report = run_coordinator(
      queue,
      [](const CampaignEntry&, const std::string&) {
        return CampaignPhase::kComplete;
      },
      copts);
  EXPECT_EQ(report.leased, 1u);
  EXPECT_EQ(queue.snapshot().view.count(CampaignPhase::kQueued), 2u);
}

TEST_F(QueueCoordinatorTest, PicksUpACrashedCoordinatorsCampaign) {
  CampaignQueue queue(options(256, /*lease_ms=*/5'000));
  queue.submit("--a=1");
  // "Coordinator one" leases and dies without finishing or renewing.
  const auto abandoned = queue.lease_next();
  ASSERT_TRUE(abandoned.has_value());
  now_ms_ += 5'001;
  // Coordinator two requeues the expired lease and drives it to a verdict.
  CoordinatorOptions copts;
  copts.wait_for_leases = false;
  const CoordinatorReport report = run_coordinator(
      queue,
      [&](const CampaignEntry& campaign, const std::string&) {
        EXPECT_EQ(campaign.requeues, 1u);  // the lost lease is on the record
        return CampaignPhase::kComplete;
      },
      copts);
  EXPECT_EQ(report.leased, 1u);
  EXPECT_EQ(report.completed, 1u);
  const QueueSnapshot snap = queue.snapshot();
  EXPECT_EQ(snap.view.count(CampaignPhase::kComplete), 1u);
  EXPECT_EQ(snap.view.next_lease_id, 3u);  // the dead lease id is burned
}

}  // namespace
}  // namespace divlib
