#include "core/step_size.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "stats/histogram.hpp"

namespace divlib {
namespace {

TEST(StepSize, UpdateRuleClampsAtObserved) {
  EXPECT_EQ(SteppedIncrementalProcess::updated_opinion(1, 9, 3), 4);
  EXPECT_EQ(SteppedIncrementalProcess::updated_opinion(9, 1, 3), 6);
  EXPECT_EQ(SteppedIncrementalProcess::updated_opinion(1, 3, 5), 3);  // clamp
  EXPECT_EQ(SteppedIncrementalProcess::updated_opinion(3, 1, 5), 1);
  EXPECT_EQ(SteppedIncrementalProcess::updated_opinion(4, 4, 5), 4);
}

TEST(StepSize, StepOneIsExactlyDiv) {
  for (Opinion own = -3; own <= 3; ++own) {
    for (Opinion observed = -3; observed <= 3; ++observed) {
      EXPECT_EQ(SteppedIncrementalProcess::updated_opinion(own, observed, 1),
                DivProcess::updated_opinion(own, observed));
    }
  }
}

TEST(StepSize, ValidatesArguments) {
  const Graph g = make_complete(4);
  EXPECT_THROW(SteppedIncrementalProcess(g, SelectionScheme::kEdge, 0),
               std::invalid_argument);
}

TEST(StepSize, NameEncodesStepAndScheme) {
  const Graph g = make_complete(4);
  EXPECT_EQ(SteppedIncrementalProcess(g, SelectionScheme::kEdge, 3).name(),
            "div-step3/edge");
}

TEST(StepSize, TrajectoriesStayInRange) {
  const Graph g = make_complete(12);
  Rng rng(1);
  OpinionState state(g, uniform_random_opinions(12, 1, 9, rng));
  SteppedIncrementalProcess process(g, SelectionScheme::kVertex, 4);
  for (int step = 0; step < 5000; ++step) {
    process.step(state, rng);
    ASSERT_GE(state.min_active(), 1);
    ASSERT_LE(state.max_active(), 9);
  }
}

TEST(StepSize, SumRemainsEdgeProcessMartingaleForAnyStep) {
  const Graph g = make_complete(16);
  for (const Opinion step_size : {2, 4, 100}) {
    constexpr int kReplicas = 500;
    constexpr int kSteps = 500;
    const auto deltas = run_replicas<double>(
        kReplicas,
        [&g, step_size](std::size_t, Rng& rng) {
          OpinionState state(g, uniform_random_opinions(16, 1, 9, rng));
          const double s0 = static_cast<double>(state.sum());
          SteppedIncrementalProcess process(g, SelectionScheme::kEdge, step_size);
          for (int step = 0; step < kSteps; ++step) {
            process.step(state, rng);
          }
          return static_cast<double>(state.sum()) - s0;
        },
        {.master_seed = 71});
    const double drift =
        std::accumulate(deltas.begin(), deltas.end(), 0.0) / kReplicas;
    // Per-step |dS| <= 8 here; the replica-mean stderr is ~8*sqrt(500)/sqrt(500) = 8.
    EXPECT_NEAR(drift, 0.0, 25.0) << "step size " << step_size;
  }
}

TEST(StepSize, UnitStepsAreBothMoreAccurateAndFaster) {
  // The ablation result is one-sided: the +-1 rule gives a deterministic
  // drift of the extremes toward the average (fast reduction, Theorem 1)
  // AND concentration of the winner (Theorem 2).  Larger steps behave like
  // pull voting, whose extreme opinions die only by slow lineage
  // coalescence -- slower reduction and a spread-out winner.
  const Graph g = make_complete(64);
  constexpr int kReplicas = 400;
  const auto measure = [&](Opinion step_size, std::uint64_t salt) {
    IntCounter winners;
    double mean_reduction = 0.0;
    const auto results = run_replicas<std::pair<Opinion, double>>(
        kReplicas,
        [&g, step_size](std::size_t, Rng& rng) {
          // c = 4.5 over opinions 1..8.
          OpinionState state(g, opinions_with_sum(64, 1, 8, 288, rng));
          SteppedIncrementalProcess process(g, SelectionScheme::kEdge, step_size);
          RunOptions options;
          options.stop = StopKind::kTwoAdjacent;
          options.max_steps = 50'000'000;
          const RunResult reduction = run(process, state, rng, options);
          options.stop = StopKind::kConsensus;
          const RunResult consensus = run(process, state, rng, options);
          return std::pair{consensus.winner.value_or(-1),
                           static_cast<double>(reduction.steps)};
        },
        {.master_seed = salt});
    for (const auto& [winner, reduction_steps] : results) {
      winners.add(winner);
      mean_reduction += reduction_steps / kReplicas;
    }
    const double on_target = winners.fraction(4) + winners.fraction(5);
    return std::pair{on_target, mean_reduction};
  };
  const auto [small_target, small_reduction] = measure(1, 81);
  const auto [large_target, large_reduction] = measure(7, 82);
  EXPECT_GT(small_target, large_target + 0.05);  // step 1 is more accurate
  EXPECT_LT(small_reduction, large_reduction);   // ... and reduces faster
  EXPECT_GT(small_target, 0.9);
}

}  // namespace
}  // namespace divlib
