#include "core/push_voting.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(PushVoting, NameEncodesScheme) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(PushVoting(g, SelectionScheme::kVertex).name(), "push/vertex");
  EXPECT_EQ(PushVoting(g, SelectionScheme::kEdge).name(), "push/edge");
}

TEST(PushVoting, StepOverwritesTheNeighborNotTheSelector) {
  // Star with distinct values: when the center pushes, a leaf changes; the
  // center itself never changes its own opinion in a step it initiates.
  const Graph g = make_star(4);
  OpinionState state(g, {9, 1, 2, 3});
  PushVoting process(g, SelectionScheme::kVertex);
  Rng rng(1);
  for (int step = 0; step < 200; ++step) {
    const Opinion center_before = state.opinion(0);
    process.step(state, rng);
    // The center only changes when a leaf pushes 1/2/3 onto it; it can
    // never acquire a value outside the original set.
    const Opinion center_after = state.opinion(0);
    EXPECT_TRUE(center_after == center_before || center_after == 1 ||
                center_after == 2 || center_after == 3);
  }
}

TEST(PushVoting, ConsensusIsAbsorbingAndReached) {
  const Graph g = make_complete(10);
  Rng init_rng(2);
  OpinionState state(g, uniform_random_opinions(10, 1, 3, init_rng));
  PushVoting process(g, SelectionScheme::kEdge);
  Rng rng(3);
  RunOptions options;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  process.step(state, rng);
  EXPECT_TRUE(state.is_consensus());
}

TEST(PushVoting, EdgeProcessEquivalentToPullEdgeProcess) {
  // Under the edge process, "uniform edge + uniform endpoint is the sender"
  // is the same distribution as "uniform edge + uniform endpoint is the
  // receiver", so push/edge coincides with pull/edge and eq. (3) applies:
  // P(1 wins) = N_1/n.  Opinion 1 on the star center -> 1/8.
  const Graph g = make_star(8);
  constexpr int kReplicas = 3000;
  const auto wins = run_replicas<int>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        std::vector<Opinion> opinions(8, 0);
        opinions[0] = 1;
        OpinionState state(g, std::move(opinions));
        PushVoting process(g, SelectionScheme::kEdge);
        RunOptions options;
        options.max_steps = 1'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1) == 1 ? 1 : 0;
      },
      {.master_seed = 11});
  int total = 0;
  for (const int w : wins) {
    total += w;
  }
  const double frequency = static_cast<double>(total) / kReplicas;
  EXPECT_NEAR(frequency, 1.0 / 8.0, 0.02);
}

TEST(PushVoting, VertexProcessPenalizesHighDegreeSenders) {
  // Under the vertex process the star center is overwritten at rate ~1 per
  // step (every leaf pushes onto it) but only pushes out at rate 1/n, so
  // its opinion wins far LESS often than even its count share -- the
  // opposite degree bias to pull voting's d(A_1)/2m = 1/2.
  const Graph g = make_star(8);
  constexpr int kReplicas = 3000;
  const auto wins = run_replicas<int>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        std::vector<Opinion> opinions(8, 0);
        opinions[0] = 1;
        OpinionState state(g, std::move(opinions));
        PushVoting process(g, SelectionScheme::kVertex);
        RunOptions options;
        options.max_steps = 1'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1) == 1 ? 1 : 0;
      },
      {.master_seed = 12});
  int total = 0;
  for (const int w : wins) {
    total += w;
  }
  const double frequency = static_cast<double>(total) / kReplicas;
  EXPECT_LT(frequency, 0.06);
}

TEST(PushVoting, RejectsUnusableGraphs) {
  const Graph isolated(3, {{0, 1}});
  EXPECT_THROW(PushVoting(isolated, SelectionScheme::kVertex),
               std::invalid_argument);
}

}  // namespace
}  // namespace divlib
