// engine/fleet: the process-isolated campaign executor.  These tests fork
// real worker processes and crash them on purpose, proving the two contracts
// the fleet exists for:
//
//   * Crash barrier -- a replica that SIGKILLs / SIGSEGVs / wedges its
//     worker costs that worker, never the campaign; repeated crashes on one
//     replica quarantine the replica.
//   * Determinism -- healthy replicas produce payloads bit-identical to
//     Isolation::kThread, because both modes run the same
//     Rng::retry_seed(master, replica, attempt) streams.
//
// Tasks run inside forked children here: no gtest assertions, no shared
// state with the parent -- everything a task "reports" must travel through
// its payload, an error frame, or its own death.
#include "engine/fleet.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <new>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "engine/campaign.hpp"
#include "engine/supervisor.hpp"
#include "obs/metrics.hpp"
#include "rng/rng.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

std::optional<std::string> rng_payload(std::size_t replica, Rng& rng) {
  return "r" + std::to_string(replica) + ":" + std::to_string(rng.next());
}

SupervisedTask healthy_task() {
  return [](std::size_t replica, Rng& rng, const CancelToken&) {
    return rng_payload(replica, rng);
  };
}

std::vector<std::size_t> iota_ids(std::size_t n) {
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  return ids;
}

struct Collector {
  std::vector<std::optional<std::string>> payloads;
  explicit Collector(std::size_t n) : payloads(n) {}
  std::function<void(std::size_t, std::string&&)> sink() {
    return [this](std::size_t replica, std::string&& payload) {
      payloads[replica] = std::move(payload);
    };
  }
};

// Which attempt is this?  The task only sees its Rng, but the stream is
// keyed by (master, replica, attempt), so probing the candidate seeds
// recovers the index.  Must run before the task consumes any randomness.
unsigned attempt_of(std::uint64_t master, std::size_t replica, const Rng& rng,
                    unsigned limit = 8) {
  for (unsigned attempt = 0; attempt < limit; ++attempt) {
    const Rng probe(Rng::retry_seed(master, replica, attempt));
    if (probe.state() == rng.state()) {
      return attempt;
    }
  }
  return limit;
}

// The payload an attempt of `replica` at index `attempt` must produce.
std::string expected_payload(std::uint64_t master, std::size_t replica,
                             unsigned attempt = 0) {
  Rng rng(Rng::retry_seed(master, replica, attempt));
  return *rng_payload(replica, rng);
}

SupervisorOptions fleet_options(std::uint64_t master, unsigned workers) {
  SupervisorOptions options;
  options.master_seed = master;
  options.isolation = Isolation::kProcess;
  options.fleet.workers = workers;
  options.fleet.heartbeat_interval = 20ms;
  options.fleet.suspect_after = 400ms;
  options.fleet.dead_after = 1500ms;
  options.backoff_base = 1ms;  // keep crash-retry tests fast
  return options;
}

struct EventLog {
  std::mutex mu;
  std::vector<SupervisionEvent> events;
  std::function<void(const SupervisionEvent&)> sink() {
    return [this](const SupervisionEvent& event) {
      std::lock_guard<std::mutex> lock(mu);
      events.push_back(event);
    };
  }
  std::size_t count(SupervisionEvent::Kind kind) {
    std::lock_guard<std::mutex> lock(mu);
    std::size_t n = 0;
    for (const auto& event : events) {
      n += event.kind == kind ? 1 : 0;
    }
    return n;
  }
};

TEST(FleetTest, HealthyFleetMatchesThreadIsolationBitForBit) {
  constexpr std::uint64_t kMaster = 20260807;
  const std::size_t n = 16;

  SupervisorOptions thread_options;
  thread_options.master_seed = kMaster;
  thread_options.num_threads = 4;
  Collector expected(n);
  run_supervised_set(iota_ids(n), healthy_task(), expected.sink(),
                     thread_options);

  SupervisorOptions options = fleet_options(kMaster, 4);
  Collector got(n);
  const SupervisorReport report =
      run_supervised_set(iota_ids(n), healthy_task(), got.sink(), options);

  EXPECT_EQ(report.replicas, n);
  EXPECT_EQ(report.succeeded, n);
  EXPECT_EQ(report.unfinished, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.retries, 0u);
  EXPECT_FALSE(report.cancelled);
  EXPECT_GE(report.worker_spawns, 1u);
  EXPECT_EQ(report.worker_deaths, 0u);
  for (std::size_t replica = 0; replica < n; ++replica) {
    ASSERT_TRUE(got.payloads[replica].has_value()) << "replica " << replica;
    EXPECT_EQ(*got.payloads[replica], *expected.payloads[replica])
        << "replica " << replica;
  }
}

// Regression: a heartbeat cadence at/above suspect_after used to flap every
// healthy worker through Suspect on each beat gap.  The fleet now clamps the
// cadence inside the suspect window (with a stderr warning), so a healthy
// run under a flappy configuration sees ZERO suspect transitions.
TEST(FleetTest, FlappyHeartbeatCadenceIsClampedNotTrusted) {
  constexpr std::uint64_t kMaster = 20260808;
  const std::size_t n = 8;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.fleet.heartbeat_interval = 600ms;  // >= suspect_after: would flap
  options.fleet.suspect_after = 400ms;
  options.fleet.dead_after = 1500ms;
  EventLog log;
  options.on_event = log.sink();
  Collector got(n);
  const SupervisorReport report =
      run_supervised_set(iota_ids(n), healthy_task(), got.sink(), options);
  EXPECT_EQ(report.succeeded, n);
  EXPECT_EQ(report.worker_suspects, 0u);
  EXPECT_EQ(report.worker_deaths, 0u);
  EXPECT_EQ(log.count(SupervisionEvent::Kind::kWorkerSuspect), 0u);
  for (std::size_t replica = 0; replica < n; ++replica) {
    ASSERT_TRUE(got.payloads[replica].has_value()) << "replica " << replica;
    EXPECT_EQ(*got.payloads[replica], expected_payload(kMaster, replica))
        << "replica " << replica;
  }
}

TEST(FleetTest, SpawnAndAliveSurfaceAsEventsAndCounters) {
  constexpr std::uint64_t kMaster = 99;
  SupervisorOptions options = fleet_options(kMaster, 2);
  MetricsRegistry metrics;
  options.metrics = &metrics;
  EventLog log;
  options.on_event = log.sink();
  Collector got(6);
  const SupervisorReport report =
      run_supervised_set(iota_ids(6), healthy_task(), got.sink(), options);

  EXPECT_EQ(report.succeeded, 6u);
  const std::size_t spawns = log.count(SupervisionEvent::Kind::kWorkerSpawn);
  const std::size_t alives = log.count(SupervisionEvent::Kind::kWorkerAlive);
  EXPECT_GE(spawns, 2u);
  EXPECT_GE(alives, 2u);
  EXPECT_EQ(metrics.counter("fleet_worker_spawns").value(), spawns);
  EXPECT_EQ(metrics.counter("fleet_worker_alive").value(), alives);
  EXPECT_EQ(report.worker_spawns, spawns);
  // Every fleet event names its worker.
  std::lock_guard<std::mutex> lock(log.mu);
  for (const auto& event : log.events) {
    if (event.kind == SupervisionEvent::Kind::kWorkerSpawn ||
        event.kind == SupervisionEvent::Kind::kWorkerAlive) {
      EXPECT_GE(event.worker, 0);
      EXPECT_NE(event.to_json().find("\"worker\""), std::string::npos);
    }
  }
}

TEST(FleetTest, CrashOnFirstAttemptRetriesOnFreshSeed) {
  constexpr std::uint64_t kMaster = 404;
  const std::size_t n = 4;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.max_attempts = 3;
  options.fleet.max_worker_deaths_per_replica = 3;
  EventLog log;
  options.on_event = log.sink();
  Collector got(n);
  const SupervisorReport report = run_supervised_set(
      iota_ids(n),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 1 && attempt_of(kMaster, replica, rng) == 0) {
          std::raise(SIGKILL);  // die without a trace: no frame, no unwind
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  EXPECT_EQ(report.succeeded, n);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_GE(report.retries, 1u);
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_GE(log.count(SupervisionEvent::Kind::kWorkerDead), 1u);
  EXPECT_GE(log.count(SupervisionEvent::Kind::kRetry), 1u);
  // The survivor ran attempt 1's stream, not a replay of attempt 0's.
  ASSERT_TRUE(got.payloads[1].has_value());
  EXPECT_EQ(*got.payloads[1], expected_payload(kMaster, 1, 1));
  for (const std::size_t replica : {0u, 2u, 3u}) {
    ASSERT_TRUE(got.payloads[replica].has_value());
    EXPECT_EQ(*got.payloads[replica], expected_payload(kMaster, replica));
  }
}

TEST(FleetTest, RepeatedCrashesQuarantineTheReplicaOnly) {
  constexpr std::uint64_t kMaster = 505;
  const std::size_t n = 6;
  SupervisorOptions options = fleet_options(kMaster, 3);
  options.max_attempts = 5;
  options.fleet.max_worker_deaths_per_replica = 2;
  EventLog log;
  options.on_event = log.sink();
  Collector got(n);
  const SupervisorReport report = run_supervised_set(
      iota_ids(n),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 2) {
          std::raise(SIGSEGV);  // every attempt crashes: a reproducible bug
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  // The second death on replica 2 reclassified the crash deterministic.
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].replica, 2u);
  EXPECT_EQ(report.quarantined[0].failure, FailureClass::kDeterministic);
  EXPECT_EQ(report.quarantined[0].attempts, 2u);
  EXPECT_GE(report.worker_deaths, 2u);
  EXPECT_GE(log.count(SupervisionEvent::Kind::kQuarantine), 1u);
  EXPECT_FALSE(got.payloads[2].has_value());
  // The crash barrier held: every other replica finished bit-identically.
  EXPECT_EQ(report.succeeded, n - 1);
  for (std::size_t replica = 0; replica < n; ++replica) {
    if (replica == 2) {
      continue;
    }
    ASSERT_TRUE(got.payloads[replica].has_value()) << "replica " << replica;
    EXPECT_EQ(*got.payloads[replica], expected_payload(kMaster, replica))
        << "replica " << replica;
  }
}

TEST(FleetTest, BadAllocBecomesResourceErrorFrameAndRetries) {
  constexpr std::uint64_t kMaster = 606;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.max_attempts = 3;
  EventLog log;
  options.on_event = log.sink();
  Collector got(3);
  const SupervisorReport report = run_supervised_set(
      iota_ids(3),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 0 && attempt_of(kMaster, replica, rng) == 0) {
          throw std::bad_alloc{};  // caught in the worker, NOT a crash
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  EXPECT_EQ(report.succeeded, 3u);
  EXPECT_GE(report.retries, 1u);
  // An exception the worker can catch costs an attempt, never the worker.
  EXPECT_EQ(report.worker_deaths, 0u);
  bool saw_resource_retry = false;
  {
    std::lock_guard<std::mutex> lock(log.mu);
    for (const auto& event : log.events) {
      saw_resource_retry =
          saw_resource_retry ||
          (event.kind == SupervisionEvent::Kind::kRetry &&
           event.failure == FailureClass::kResource && event.replica == 0);
    }
  }
  EXPECT_TRUE(saw_resource_retry);
  EXPECT_EQ(*got.payloads[0], expected_payload(kMaster, 0, 1));
}

TEST(FleetTest, ThrownLogicErrorFailsFastToQuarantine) {
  constexpr std::uint64_t kMaster = 707;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.max_attempts = 4;
  Collector got(3);
  const SupervisorReport report = run_supervised_set(
      iota_ids(3),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 1) {
          throw std::logic_error("deterministic bug");
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].replica, 1u);
  EXPECT_EQ(report.quarantined[0].failure, FailureClass::kDeterministic);
  // Fail fast: one attempt consumed despite the budget of four.
  EXPECT_EQ(report.quarantined[0].attempts, 1u);
  EXPECT_EQ(report.fail_fasts, 1u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_NE(report.quarantined[0].message.find("deterministic bug"),
            std::string::npos);
}

TEST(FleetTest, DeadlineDrainsCooperativelyAndRetries) {
  constexpr std::uint64_t kMaster = 808;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.max_attempts = 3;
  options.deadline = 50ms;
  Collector got(2);
  const SupervisorReport report = run_supervised_set(
      iota_ids(2),
      [](std::size_t replica, Rng& rng,
         const CancelToken& cancel) -> std::optional<std::string> {
        if (replica == 1 && attempt_of(kMaster, replica, rng) == 0) {
          // Well-behaved straggler: polls its token like the real engines.
          for (int i = 0; i < 4000; ++i) {
            if (cancel.requested()) {
              return std::nullopt;
            }
            std::this_thread::sleep_for(2ms);
          }
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  EXPECT_EQ(report.succeeded, 2u);
  EXPECT_GE(report.deadline_kills, 1u);
  // The drain usually lands well inside the SIGKILL grace, keeping
  // worker_deaths at zero -- but on a loaded machine the escalation may fire
  // first, which is equally correct fleet behavior, so neither outcome is
  // asserted.  What IS load-independent: the replica retried on the fresh
  // attempt-1 stream either way.
  EXPECT_EQ(*got.payloads[1], expected_payload(kMaster, 1, 1));
}

TEST(FleetTest, HungWorkerIsKilledAfterTheGracePeriod) {
  constexpr std::uint64_t kMaster = 909;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.max_attempts = 3;
  options.deadline = 50ms;
  options.fleet.dead_after = 300ms;  // SIGKILL grace after the SIGUSR1
  options.fleet.max_worker_deaths_per_replica = 3;
  Collector got(2);
  const SupervisorReport report = run_supervised_set(
      iota_ids(2),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 0 && attempt_of(kMaster, replica, rng) == 0) {
          // Ignores its token entirely; only SIGKILL can reclaim the slot.
          std::this_thread::sleep_for(30s);
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  EXPECT_EQ(report.succeeded, 2u);
  EXPECT_GE(report.deadline_kills, 1u);
  EXPECT_EQ(*got.payloads[0], expected_payload(kMaster, 0, 1));
}

TEST(FleetTest, StoppedWorkerEscalatesThroughSuspectToDead) {
  constexpr std::uint64_t kMaster = 1010;
  SupervisorOptions options = fleet_options(kMaster, 2);
  options.max_attempts = 3;
  options.fleet.suspect_after = 150ms;
  options.fleet.dead_after = 400ms;
  options.fleet.max_worker_deaths_per_replica = 3;
  MetricsRegistry metrics;
  options.metrics = &metrics;
  EventLog log;
  options.on_event = log.sink();
  Collector got(2);
  const SupervisorReport report = run_supervised_set(
      iota_ids(2),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 0 && attempt_of(kMaster, replica, rng) == 0) {
          // SIGSTOP freezes the whole process, heartbeat thread included:
          // the one failure only the liveness timers can see.
          std::raise(SIGSTOP);
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  EXPECT_EQ(report.succeeded, 2u);
  EXPECT_GE(report.worker_suspects, 1u);
  EXPECT_GE(report.worker_deaths, 1u);
  EXPECT_GE(log.count(SupervisionEvent::Kind::kWorkerSuspect), 1u);
  EXPECT_GE(log.count(SupervisionEvent::Kind::kWorkerDead), 1u);
  EXPECT_EQ(metrics.counter("fleet_worker_suspects").value(),
            report.worker_suspects);
  EXPECT_EQ(metrics.counter("fleet_worker_deaths").value(),
            report.worker_deaths);
  EXPECT_EQ(*got.payloads[0], expected_payload(kMaster, 0, 1));
}

TEST(FleetTest, OperatorCancelLeavesQueuedWorkUnfinished) {
  constexpr std::uint64_t kMaster = 1111;
  SupervisorOptions options = fleet_options(kMaster, 2);
  CancelToken cancel;
  options.cancel = &cancel;
  Collector got(8);
  const SupervisorReport report = run_supervised_set(
      iota_ids(8),
      [](std::size_t replica, Rng& rng,
         const CancelToken& token) -> std::optional<std::string> {
        // Slow enough that the cancel lands mid-campaign; drains politely.
        for (int i = 0; i < 250; ++i) {
          if (token.requested()) {
            return std::nullopt;
          }
          std::this_thread::sleep_for(2ms);
        }
        return rng_payload(replica, rng);
      },
      [&] {
        auto sink = got.sink();
        return [sink, &cancel](std::size_t replica, std::string&& payload) {
          sink(replica, std::move(payload));
          cancel.request(CancelReason::kUser);  // cancel after the first win
        };
      }(),
      options);

  EXPECT_TRUE(report.cancelled);
  EXPECT_GE(report.unfinished, 1u);
  EXPECT_EQ(report.succeeded + report.unfinished, 8u);
  EXPECT_TRUE(report.quarantined.empty());
}

// ---------------------------------------------------------------------------
// Campaign-level integration: the crash barrier and the quarantine journal.

class FleetCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("divlib_fleet_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CampaignOptions campaign(const std::string& sub, bool resume = false) const {
    CampaignOptions opts;
    opts.directory = (dir_ / sub).string();
    opts.resume = resume;
    opts.meta = "fleet-test 1\n";
    return opts;
  }

  fs::path dir_;
};

TEST_F(FleetCampaignTest, CrashedReplicaIsQuarantinedJournaledAndSkipped) {
  constexpr std::uint64_t kMaster = 2222;
  const std::size_t n = 6;
  // Replica 4 kills its worker on every attempt; everyone else is healthy.
  const SupervisedTask crashy = [](std::size_t replica, Rng& rng,
                                   const CancelToken&)
      -> std::optional<std::string> {
    if (replica == 4) {
      std::raise(SIGKILL);
    }
    return rng_payload(replica, rng);
  };

  SupervisorOptions process = fleet_options(kMaster, 2);
  process.max_attempts = 4;
  process.fleet.max_worker_deaths_per_replica = 2;
  process.min_success_fraction = 0.5;
  const SupervisedCampaignResult first =
      run_supervised_campaign(n, crashy, campaign("proc"), process);

  EXPECT_EQ(first.status, CampaignStatus::kDegraded);
  ASSERT_EQ(first.quarantined.size(), 1u);
  EXPECT_EQ(first.quarantined[0].replica, 4u);
  EXPECT_EQ(first.quarantined[0].failure, FailureClass::kDeterministic);
  EXPECT_EQ(first.ran, n - 1);

  // Thread-isolation reference: the same campaign, with the crash expressed
  // as the exception a thread pool can survive.  Healthy payloads must be
  // bit-identical across isolation modes.
  SupervisorOptions thread_mode;
  thread_mode.master_seed = kMaster;
  thread_mode.num_threads = 2;
  thread_mode.max_attempts = 4;
  thread_mode.min_success_fraction = 0.5;
  const SupervisedCampaignResult reference = run_supervised_campaign(
      n,
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 4) {
          throw std::logic_error("stand-in for the crash");
        }
        return rng_payload(replica, rng);
      },
      campaign("thread"), thread_mode);
  ASSERT_EQ(reference.quarantined.size(), 1u);
  for (std::size_t replica = 0; replica < n; ++replica) {
    EXPECT_EQ(first.payloads[replica], reference.payloads[replica])
        << "replica " << replica;
  }

  // The quarantine hit the journal: a resume (thread mode -- the journal is
  // isolation-agnostic) skips the poison replica instead of re-running it.
  const SupervisedCampaignResult resumed = run_supervised_campaign(
      n, healthy_task(), campaign("proc", /*resume=*/true), thread_mode);
  EXPECT_EQ(resumed.resumed, n - 1);
  EXPECT_EQ(resumed.ran, 0u);
  ASSERT_EQ(resumed.quarantined.size(), 1u);
  EXPECT_EQ(resumed.quarantined[0].replica, 4u);
  EXPECT_EQ(resumed.status, CampaignStatus::kDegraded);
}

TEST_F(FleetCampaignTest, PoisonSeedDodgeRestartsAfterQuarantinedAttempts) {
  constexpr std::uint64_t kMaster = 3333;
  const std::size_t n = 4;
  // Attempt 0 of replica 1 fails deterministically -- a poison seed.  The
  // task keyed on the attempt index (not a counter) so the poison is a
  // stable property of the seed, exactly what the dodge is for.
  const SupervisedTask poisoned = [](std::size_t replica, Rng& rng,
                                     const CancelToken&)
      -> std::optional<std::string> {
    if (replica == 1 && attempt_of(kMaster, replica, rng) == 0) {
      throw std::logic_error("poison seed");
    }
    return rng_payload(replica, rng);
  };

  SupervisorOptions supervision;
  supervision.master_seed = kMaster;
  supervision.num_threads = 2;
  supervision.min_success_fraction = 0.5;
  const SupervisedCampaignResult first =
      run_supervised_campaign(n, poisoned, campaign("dodge"), supervision);
  ASSERT_EQ(first.quarantined.size(), 1u);
  EXPECT_EQ(first.quarantined[0].replica, 1u);
  EXPECT_EQ(first.quarantined[0].attempts, 1u);
  EXPECT_EQ(first.status, CampaignStatus::kDegraded);

  // A plain resume must NOT re-run the quarantined replica...
  const SupervisedCampaignResult plain = run_supervised_campaign(
      n, poisoned, campaign("dodge", /*resume=*/true), supervision);
  EXPECT_EQ(plain.ran, 0u);
  ASSERT_EQ(plain.quarantined.size(), 1u);

  // ... but the dodge re-admits it starting at attempt 1 (past the poison),
  // so the retry runs a fresh stream and succeeds.
  CampaignOptions dodge = campaign("dodge", /*resume=*/true);
  dodge.retry_quarantined = true;
  const SupervisedCampaignResult retried =
      run_supervised_campaign(n, poisoned, dodge, supervision);
  EXPECT_EQ(retried.ran, 1u);
  EXPECT_TRUE(retried.quarantined.empty());
  EXPECT_EQ(retried.status, CampaignStatus::kComplete);
  ASSERT_TRUE(retried.payloads[1].has_value());
  EXPECT_EQ(*retried.payloads[1], expected_payload(kMaster, 1, 1));

  // And the dodge is durable: one more resume sees a complete campaign.
  const SupervisedCampaignResult final_check = run_supervised_campaign(
      n, healthy_task(), campaign("dodge", /*resume=*/true), supervision);
  EXPECT_TRUE(final_check.complete());
  EXPECT_TRUE(final_check.quarantined.empty());
  EXPECT_EQ(*final_check.payloads[1], expected_payload(kMaster, 1, 1));
}

TEST_F(FleetCampaignTest, ProcessModeDodgeRetriesPastACrashingSeed) {
  constexpr std::uint64_t kMaster = 4444;
  const std::size_t n = 4;
  // Attempt 0 of replica 2 CRASHES the worker (not an exception): under
  // max_worker_deaths_per_replica = 1 a single death quarantines, stamping
  // attempts = 1 into the journal.  The dodge must then restart at attempt 1
  // -- whose seed is healthy -- under process isolation end to end.
  const SupervisedTask crash_poison = [](std::size_t replica, Rng& rng,
                                         const CancelToken&)
      -> std::optional<std::string> {
    if (replica == 2 && attempt_of(kMaster, replica, rng) == 0) {
      std::raise(SIGKILL);
    }
    return rng_payload(replica, rng);
  };

  SupervisorOptions process = fleet_options(kMaster, 2);
  process.max_attempts = 1;
  process.fleet.max_worker_deaths_per_replica = 1;
  process.min_success_fraction = 0.5;
  const SupervisedCampaignResult first =
      run_supervised_campaign(n, crash_poison, campaign("pd"), process);
  ASSERT_EQ(first.quarantined.size(), 1u);
  EXPECT_EQ(first.quarantined[0].replica, 2u);
  EXPECT_EQ(first.quarantined[0].attempts, 1u);

  CampaignOptions dodge = campaign("pd", /*resume=*/true);
  dodge.retry_quarantined = true;
  const SupervisedCampaignResult retried =
      run_supervised_campaign(n, crash_poison, dodge, process);
  EXPECT_TRUE(retried.quarantined.empty());
  EXPECT_EQ(retried.status, CampaignStatus::kComplete);
  ASSERT_TRUE(retried.payloads[2].has_value());
  EXPECT_EQ(*retried.payloads[2], expected_payload(kMaster, 2, 1));
}

}  // namespace
}  // namespace divlib
