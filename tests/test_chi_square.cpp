#include "stats/chi_square.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/rng.hpp"

namespace divlib {
namespace {

TEST(Gamma, KnownValues) {
  // P(1, x) = 1 - exp(-x).
  for (const double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(regularized_gamma_p(1.0, x), 1.0 - std::exp(-x), 1e-12) << x;
  }
  // P(0.5, x) = erf(sqrt(x)).
  for (const double x : {0.25, 1.0, 4.0}) {
    EXPECT_NEAR(regularized_gamma_p(0.5, x), std::erf(std::sqrt(x)), 1e-10) << x;
  }
}

TEST(Gamma, PAndQComplement) {
  for (const double s : {0.5, 1.0, 2.5, 10.0}) {
    for (const double x : {0.1, 1.0, 3.0, 20.0}) {
      EXPECT_NEAR(regularized_gamma_p(s, x) + regularized_gamma_q(s, x), 1.0,
                  1e-12)
          << "s=" << s << " x=" << x;
    }
  }
}

TEST(Gamma, BoundaryAndValidation) {
  EXPECT_DOUBLE_EQ(regularized_gamma_p(2.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_gamma_q(2.0, 0.0), 1.0);
  EXPECT_THROW(regularized_gamma_p(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(regularized_gamma_q(1.0, -1.0), std::invalid_argument);
}

TEST(ChiSquare, SurvivalKnownValues) {
  // dof = 2: survival = exp(-x/2).
  for (const double x : {1.0, 2.0, 5.0}) {
    EXPECT_NEAR(chi_square_survival(x, 2.0), std::exp(-x / 2.0), 1e-12) << x;
  }
  // dof = 1 at the 95% critical value 3.841.
  EXPECT_NEAR(chi_square_survival(3.841, 1.0), 0.05, 2e-4);
  EXPECT_DOUBLE_EQ(chi_square_survival(0.0, 3.0), 1.0);
  EXPECT_THROW(chi_square_survival(1.0, 0.0), std::invalid_argument);
}

TEST(ChiSquare, PerfectFitGivesHighPValue) {
  const std::vector<std::uint64_t> observed{250, 250, 250, 250};
  const std::vector<double> expected{0.25, 0.25, 0.25, 0.25};
  const auto result = chi_square_test(observed, expected);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
  EXPECT_EQ(result.total, 1000u);
  EXPECT_DOUBLE_EQ(result.dof, 3.0);
}

TEST(ChiSquare, GrossMismatchGivesTinyPValue) {
  const std::vector<std::uint64_t> observed{900, 100};
  const std::vector<double> expected{0.5, 0.5};
  const auto result = chi_square_test(observed, expected);
  EXPECT_GT(result.statistic, 100.0);
  EXPECT_LT(result.p_value, 1e-10);
}

TEST(ChiSquare, UnnormalizedExpectationsAreRenormalized) {
  const std::vector<std::uint64_t> observed{30, 70};
  const std::vector<double> weights{3.0, 7.0};  // sums to 10, not 1
  const auto result = chi_square_test(observed, weights);
  EXPECT_NEAR(result.statistic, 0.0, 1e-12);
}

TEST(ChiSquare, ZeroProbabilityCategoryRules) {
  const std::vector<std::uint64_t> clean{50, 50, 0};
  const std::vector<double> expected{0.5, 0.5, 0.0};
  const auto ok = chi_square_test(clean, expected);
  EXPECT_TRUE(std::isfinite(ok.statistic));
  const std::vector<std::uint64_t> violating{50, 50, 5};
  const auto bad = chi_square_test(violating, expected);
  EXPECT_DOUBLE_EQ(bad.p_value, 0.0);
}

TEST(ChiSquare, Validation) {
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1},
                               std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1, 2},
                               std::vector<double>{0.5}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{0, 0},
                               std::vector<double>{0.5, 0.5}),
               std::invalid_argument);
  EXPECT_THROW(chi_square_test(std::vector<std::uint64_t>{1, 2},
                               std::vector<double>{-0.5, 1.5}),
               std::invalid_argument);
}

TEST(ChiSquare, CalibratedUnderTheNull) {
  // Sample from the hypothesized distribution; p-values should be roughly
  // uniform: count how often p < 0.05 over many repetitions.
  Rng rng(5);
  const std::vector<double> expected{0.2, 0.3, 0.5};
  int rejections = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::uint64_t> observed(3, 0);
    for (int i = 0; i < 600; ++i) {
      const double u = rng.uniform01();
      ++observed[u < 0.2 ? 0 : (u < 0.5 ? 1 : 2)];
    }
    if (chi_square_test(observed, expected).p_value < 0.05) {
      ++rejections;
    }
  }
  EXPECT_NEAR(static_cast<double>(rejections) / kTrials, 0.05, 0.035);
}

}  // namespace
}  // namespace divlib
