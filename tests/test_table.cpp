#include "io/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace divlib {
namespace {

TEST(Table, RequiresAtLeastOneColumn) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CellBeforeRowThrows) {
  Table t({"a"});
  EXPECT_THROW(t.cell("x"), std::logic_error);
}

TEST(Table, OverfullRowThrows) {
  Table t({"a", "b"});
  t.row().cell("1").cell("2");
  EXPECT_THROW(t.cell("3"), std::logic_error);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.row().cell("x").cell(std::int64_t{42});
  t.row().cell("longer").cell(7);
  const std::string text = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
  // All lines equal length (alignment).
  std::istringstream lines(text);
  std::string line;
  std::size_t width = 0;
  while (std::getline(lines, line)) {
    if (width == 0) {
      width = line.size();
    }
    EXPECT_EQ(line.size(), width);
  }
}

TEST(Table, DoubleFormattingRespectsDecimals) {
  Table t({"v"});
  t.row().cell(3.14159, 2);
  EXPECT_NE(t.to_string().find("3.14"), std::string::npos);
  EXPECT_EQ(t.to_string().find("3.142"), std::string::npos);
}

TEST(Table, ShortRowsArePadded) {
  Table t({"a", "b"});
  t.row().cell("only");
  const std::string text = t.to_string();
  EXPECT_NE(text.find("only"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(Table, FormatDoubleHelper) {
  EXPECT_EQ(format_double(1.5, 3), "1.500");
  EXPECT_EQ(format_double(-0.25, 1), "-0.2");  // round-half-to-even via iostream
}

TEST(Table, BannerContainsTitle) {
  std::ostringstream out;
  print_banner(out, "EXP-1");
  EXPECT_NE(out.str().find("== EXP-1 =="), std::string::npos);
}

}  // namespace
}  // namespace divlib
