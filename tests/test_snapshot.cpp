#include "engine/snapshot.hpp"

#include <gtest/gtest.h>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(Snapshot, RoundTripsStateExactly) {
  const Graph g = make_barbell(5);
  Rng rng(1);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), -2, 7, rng));
  const Snapshot snapshot = snapshot_from_string(to_snapshot(state));
  EXPECT_EQ(snapshot.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(snapshot.graph.num_edges(), g.num_edges());
  const OpinionState restored = snapshot.restore();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(restored.opinion(v), state.opinion(v));
  }
  EXPECT_EQ(restored.sum(), state.sum());
  EXPECT_EQ(restored.degree_weighted_sum(), state.degree_weighted_sum());
  EXPECT_EQ(restored.min_active(), state.min_active());
  EXPECT_EQ(restored.max_active(), state.max_active());
}

TEST(Snapshot, RejectsMalformedInput) {
  EXPECT_THROW(snapshot_from_string(""), std::invalid_argument);
  EXPECT_THROW(snapshot_from_string("divsnapshot 2\nn 1\nopinions 1\n3\n"),
               std::invalid_argument);
  EXPECT_THROW(snapshot_from_string("divsnapshot 1\nn 2\n0 1\n"),
               std::invalid_argument);  // missing opinions section
  EXPECT_THROW(
      snapshot_from_string("divsnapshot 1\nn 2\n0 1\nopinions 3\n1\n2\n3\n"),
      std::invalid_argument);  // count mismatch
  EXPECT_THROW(
      snapshot_from_string("divsnapshot 1\nn 2\n0 1\nopinions 2\n1\n"),
      std::invalid_argument);  // truncated
}

TEST(Snapshot, ResumedRunContinuesCorrectly) {
  // Run to the two-adjacent stage, checkpoint, restore, and finish: the
  // restored state's final stage behaves like the original (winner within
  // the surviving pair).
  const Graph g = make_complete(24);
  Rng rng(2);
  OpinionState state(g, uniform_random_opinions(24, 1, 6, rng));
  DivProcess process(g, SelectionScheme::kEdge);
  RunOptions options;
  options.stop = StopKind::kTwoAdjacent;
  options.max_steps = 10'000'000;
  ASSERT_TRUE(run(process, state, rng, options).completed);

  const Snapshot snapshot = snapshot_from_string(to_snapshot(state));
  OpinionState resumed = snapshot.restore();
  const Opinion lo = resumed.min_active();
  const Opinion hi = resumed.max_active();
  DivProcess resumed_process(snapshot.graph, SelectionScheme::kEdge);
  options.stop = StopKind::kConsensus;
  Rng rng2(3);
  const RunResult result = run(resumed_process, resumed, rng2, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(*result.winner, lo);
  EXPECT_LE(*result.winner, hi);
}

}  // namespace
}  // namespace divlib
