#include "engine/snapshot.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(Snapshot, RoundTripsStateExactly) {
  const Graph g = make_barbell(5);
  Rng rng(1);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), -2, 7, rng));
  const Snapshot snapshot = snapshot_from_string(to_snapshot(state));
  EXPECT_EQ(snapshot.graph.num_vertices(), g.num_vertices());
  EXPECT_EQ(snapshot.graph.num_edges(), g.num_edges());
  const OpinionState restored = snapshot.restore();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(restored.opinion(v), state.opinion(v));
  }
  EXPECT_EQ(restored.sum(), state.sum());
  EXPECT_EQ(restored.degree_weighted_sum(), state.degree_weighted_sum());
  EXPECT_EQ(restored.min_active(), state.min_active());
  EXPECT_EQ(restored.max_active(), state.max_active());
}

TEST(Snapshot, RejectsMalformedInput) {
  EXPECT_THROW(snapshot_from_string(""), std::invalid_argument);
  EXPECT_THROW(snapshot_from_string("divsnapshot 2\nn 1\nopinions 1\n3\n"),
               std::invalid_argument);
  EXPECT_THROW(snapshot_from_string("divsnapshot 1\nn 2\n0 1\n"),
               std::invalid_argument);  // missing opinions section
  EXPECT_THROW(
      snapshot_from_string("divsnapshot 1\nn 2\n0 1\nopinions 3\n1\n2\n3\n"),
      std::invalid_argument);  // count mismatch
  EXPECT_THROW(
      snapshot_from_string("divsnapshot 1\nn 2\n0 1\nopinions 2\n1\n"),
      std::invalid_argument);  // truncated
}

TEST(Snapshot, ResumedRunContinuesCorrectly) {
  // Run to the two-adjacent stage, checkpoint, restore, and finish: the
  // restored state's final stage behaves like the original (winner within
  // the surviving pair).
  const Graph g = make_complete(24);
  Rng rng(2);
  OpinionState state(g, uniform_random_opinions(24, 1, 6, rng));
  DivProcess process(g, SelectionScheme::kEdge);
  RunOptions options;
  options.stop = StopKind::kTwoAdjacent;
  options.max_steps = 10'000'000;
  ASSERT_TRUE(run(process, state, rng, options).completed);

  const Snapshot snapshot = snapshot_from_string(to_snapshot(state));
  OpinionState resumed = snapshot.restore();
  const Opinion lo = resumed.min_active();
  const Opinion hi = resumed.max_active();
  DivProcess resumed_process(snapshot.graph, SelectionScheme::kEdge);
  options.stop = StopKind::kConsensus;
  Rng rng2(3);
  const RunResult result = run(resumed_process, resumed, rng2, options);
  ASSERT_TRUE(result.completed);
  EXPECT_GE(*result.winner, lo);
  EXPECT_LE(*result.winner, hi);
}

TEST(SnapshotV2, RoundTripsRngStateAndStepCounter) {
  const Graph g = make_barbell(4);
  Rng rng(5);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), 0, 6, rng));
  rng.next();  // advance so the captured position is mid-stream
  const Snapshot snapshot =
      snapshot_from_string(to_snapshot_v2(state, rng, 1234));
  EXPECT_EQ(snapshot.version, 2);
  EXPECT_TRUE(snapshot.has_rng);
  EXPECT_EQ(snapshot.steps, 1234u);
  const OpinionState restored = snapshot.restore();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(restored.opinion(v), state.opinion(v));
  }
  // The restored generator continues the exact same stream.
  Rng resumed = snapshot.restore_rng();
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(resumed.next(), rng.next());
  }
}

TEST(SnapshotV2, CheckpointedRunContinuesBitIdentically) {
  // Run 2000 steps straight through vs. 1000 steps, checkpoint to v2,
  // restore in "another process", and run 1000 more: the final opinion
  // vectors must match bit for bit.
  const Graph g = make_complete(128);
  Rng init_rng(4);
  const std::vector<Opinion> start =
      uniform_random_opinions(g.num_vertices(), 1, 9, init_rng);
  RunOptions options;
  options.max_steps = 2000;

  OpinionState straight(g, start);
  DivProcess process(g, SelectionScheme::kEdge);
  Rng straight_rng(99);
  ASSERT_EQ(run(process, straight, straight_rng, options).status,
            RunStatus::kCapped);

  OpinionState first_half(g, start);
  Rng half_rng(99);
  options.max_steps = 1000;
  ASSERT_EQ(run(process, first_half, half_rng, options).status,
            RunStatus::kCapped);
  const std::string checkpoint = to_snapshot_v2(first_half, half_rng, 1000);

  const Snapshot snapshot = snapshot_from_string(checkpoint);
  OpinionState second_half = snapshot.restore();
  Rng resumed_rng = snapshot.restore_rng();
  DivProcess resumed_process(snapshot.graph, SelectionScheme::kEdge);
  EXPECT_EQ(snapshot.steps, 1000u);
  ASSERT_EQ(run(resumed_process, second_half, resumed_rng, options).status,
            RunStatus::kCapped);

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(second_half.opinion(v), straight.opinion(v));
  }
  EXPECT_EQ(second_half.sum(), straight.sum());
}

TEST(SnapshotV2, FlippedByteIsNamedInTheChecksumError) {
  const Graph g = make_complete(6);
  Rng rng(8);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), 1, 4, rng));
  std::string text = to_snapshot_v2(state, rng, 7);
  ASSERT_NO_THROW(snapshot_from_string(text));
  text[text.find("opinions")] ^= 0x08;  // flip one bit inside the body
  try {
    snapshot_from_string(text);
    FAIL() << "corrupted snapshot was accepted";
  } catch (const std::invalid_argument& error) {
    const std::string message = error.what();
    EXPECT_NE(message.find("checksum mismatch"), std::string::npos) << message;
    EXPECT_NE(message.find("offset"), std::string::npos) << message;
  }
}

TEST(SnapshotV2, TruncatedChecksumLineIsRejected) {
  const Graph g = make_complete(4);
  Rng rng(8);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), 1, 4, rng));
  const std::string text = to_snapshot_v2(state, rng, 0);
  // Cut the trailing checksum line off entirely: the v2 header promises one.
  const std::string torn = text.substr(0, text.rfind("checksum"));
  EXPECT_THROW(snapshot_from_string(torn), std::invalid_argument);
}

TEST(SnapshotV2, SaveAndLoadRoundTripThroughAFile) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "divlib_snapshot_v2_test";
  fs::create_directories(dir);
  const std::string path = (dir / "state.snap").string();
  const Graph g = make_barbell(3);
  Rng rng(21);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), -1, 5, rng));
  save_snapshot(path, state, rng, 77);
  const Snapshot loaded = load_snapshot(path);
  EXPECT_EQ(loaded.version, 2);
  EXPECT_EQ(loaded.steps, 77u);
  const OpinionState restored = loaded.restore();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(restored.opinion(v), state.opinion(v));
  }
  Rng resumed = loaded.restore_rng();
  EXPECT_EQ(resumed.next(), rng.next());
  fs::remove_all(dir);
}

TEST(SnapshotV1, LegacyFormatStillRoundTripsAndCarriesNoRng) {
  const Graph g = make_barbell(3);
  Rng rng(6);
  const OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), 0, 3, rng));
  const Snapshot snapshot = snapshot_from_string(to_snapshot(state));
  EXPECT_EQ(snapshot.version, 1);
  EXPECT_FALSE(snapshot.has_rng);
  EXPECT_THROW(snapshot.restore_rng(), std::logic_error);
  const OpinionState restored = snapshot.restore();
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(restored.opinion(v), state.opinion(v));
  }
}

}  // namespace
}  // namespace divlib
