#include "core/mean_field.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/div_process.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

TEST(MeanField, ValidatesInput) {
  EXPECT_THROW(MeanFieldDiv(std::vector<double>{}), std::invalid_argument);
  EXPECT_THROW(MeanFieldDiv(std::vector<double>{0.5, -0.1}), std::invalid_argument);
  EXPECT_THROW(MeanFieldDiv(std::vector<double>{0.0, 0.0}), std::invalid_argument);
}

TEST(MeanField, NormalizesOnConstruction) {
  const MeanFieldDiv flow(std::vector<double>{2.0, 2.0});
  EXPECT_DOUBLE_EQ(flow.fraction(0), 0.5);
  EXPECT_DOUBLE_EQ(flow.total_mass(), 1.0);
}

TEST(MeanField, DriftSumsToZero) {
  const std::vector<double> x{0.3, 0.2, 0.1, 0.25, 0.15};
  const auto dx = MeanFieldDiv::drift(x);
  double total = 0.0;
  for (const double value : dx) {
    total += value;
  }
  EXPECT_NEAR(total, 0.0, 1e-15);
}

TEST(MeanField, DriftConservesTheMean) {
  // d/dtau sum_i i x_i = 0: the fluid analogue of the Lemma 3 martingale.
  const std::vector<double> x{0.4, 0.1, 0.1, 0.1, 0.3};
  const auto dx = MeanFieldDiv::drift(x);
  double mean_change = 0.0;
  for (std::size_t i = 0; i < dx.size(); ++i) {
    mean_change += static_cast<double>(i + 1) * dx[i];
  }
  EXPECT_NEAR(mean_change, 0.0, 1e-15);
}

TEST(MeanField, ConsensusIsAFixedPoint) {
  const std::vector<double> consensus{0.0, 1.0, 0.0};
  for (const double d : MeanFieldDiv::drift(consensus)) {
    EXPECT_DOUBLE_EQ(d, 0.0);
  }
}

TEST(MeanField, TwoAdjacentMixIsAFixedPoint) {
  // With support {i, i+1} every interaction between differing opinions moves
  // the updater onto the observed value, i.e. +1/-1 flows cancel exactly.
  const std::vector<double> mix{0.0, 0.6, 0.4, 0.0};
  const auto dx = MeanFieldDiv::drift(mix);
  for (const double d : dx) {
    EXPECT_NEAR(d, 0.0, 1e-15);
  }
}

TEST(MeanField, IntegrationConservesMassAndMean) {
  MeanFieldDiv flow(std::vector<double>{0.25, 0.25, 0.0, 0.25, 0.25});
  const double mean0 = flow.mean_opinion();
  flow.integrate(25.0);
  EXPECT_NEAR(flow.total_mass(), 1.0, 1e-9);
  EXPECT_NEAR(flow.mean_opinion(), mean0, 1e-9);
}

TEST(MeanField, ExtremesContract) {
  // Fractional mean (2.8): the flow converges exponentially to the
  // two-adjacent mixture {2, 3}.  (With an exactly-integer mean the
  // symmetric three-value state decays only algebraically, like 1/tau.)
  MeanFieldDiv flow(std::vector<double>{0.4, 0.1, 0.1, 0.1, 0.3});
  ASSERT_NEAR(flow.mean_opinion(), 2.8, 1e-12);
  const double before = flow.extreme_mass();
  flow.integrate(10.0);
  const double after = flow.extreme_mass();
  EXPECT_LT(after, before);
  flow.integrate(90.0);
  EXPECT_LT(flow.extreme_mass(), 0.005);
  // The limit is the Lemma 5 mixture: x_2 = 0.2, x_3 = 0.8.
  EXPECT_NEAR(flow.fraction(1), 0.2, 0.01);
  EXPECT_NEAR(flow.fraction(2), 0.8, 0.01);
}

TEST(MeanField, IntegrationRejectsBadArguments) {
  MeanFieldDiv flow(std::vector<double>{0.5, 0.5});
  EXPECT_THROW(flow.integrate(-1.0), std::invalid_argument);
  EXPECT_THROW(flow.integrate(1.0, 0.0), std::invalid_argument);
}

TEST(MeanField, MatchesSimulatedTrajectoryOnCompleteGraph) {
  // Simulate K_n DIV and compare x_1(tau) (fraction at the minimum opinion)
  // against the fluid limit at a handful of checkpoints.
  const VertexId n = 400;
  const Graph g = make_complete(n);
  constexpr int kOpinions = 5;
  constexpr int kReplicas = 60;
  const double taus[] = {1.0, 2.0, 4.0};

  // Fluid prediction from the exactly-uniform start.
  std::vector<double> predicted;
  {
    MeanFieldDiv flow(std::vector<double>(kOpinions, 1.0 / kOpinions));
    double current = 0.0;
    for (const double tau : taus) {
      flow.integrate(tau - current);
      current = tau;
      predicted.push_back(flow.fraction(0));
    }
  }

  // Simulated averages.
  const auto trajectories = run_replicas<std::vector<double>>(
      kReplicas,
      [&g, n, &taus](std::size_t, Rng& rng) {
        std::vector<VertexId> counts(kOpinions, n / kOpinions);
        OpinionState state(g, opinions_with_counts(n, 1, counts, rng));
        DivProcess process(g, SelectionScheme::kVertex);
        std::vector<double> values;
        std::uint64_t step = 0;
        for (const double tau : taus) {
          const auto until = static_cast<std::uint64_t>(tau * n);
          for (; step < until; ++step) {
            process.step(state, rng);
          }
          values.push_back(static_cast<double>(state.count(1)) / n);
        }
        return values;
      },
      {.master_seed = 77});
  for (std::size_t i = 0; i < predicted.size(); ++i) {
    Summary s;
    for (const auto& trajectory : trajectories) {
      s.add(trajectory[i]);
    }
    EXPECT_NEAR(s.mean(), predicted[i], 0.02)
        << "tau = " << taus[i] << " (fluid limit vs simulation)";
  }
}

}  // namespace
}  // namespace divlib
