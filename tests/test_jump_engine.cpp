#include "engine/jump_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/div_process.hpp"
#include "core/faulty_process.hpp"
#include "core/opinion_plane.hpp"
#include "core/pull_voting.hpp"
#include "engine/batch_engine.hpp"
#include "engine/initial_config.hpp"
#include "exact/div_chain.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "stats/chi_square.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

// Two-sample chi-square homogeneity test over winner categories.
double two_sample_chi_square_p(const std::vector<std::uint64_t>& a,
                               const std::vector<std::uint64_t>& b) {
  double total_a = 0.0;
  double total_b = 0.0;
  for (const auto count : a) total_a += static_cast<double>(count);
  for (const auto count : b) total_b += static_cast<double>(count);
  const double total = total_a + total_b;
  double statistic = 0.0;
  int used = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double column = static_cast<double>(a[i] + b[i]);
    if (column == 0.0) {
      continue;
    }
    ++used;
    const double expected_a = column * total_a / total;
    const double expected_b = column * total_b / total;
    statistic += (a[i] - expected_a) * (a[i] - expected_a) / expected_a;
    statistic += (b[i] - expected_b) * (b[i] - expected_b) / expected_b;
  }
  return chi_square_survival(statistic, used - 1);
}

// Two-sample Kolmogorov-Smirnov statistic D = sup |F_a - F_b|.
double two_sample_ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    d = std::max(d, std::abs(static_cast<double>(i) / a.size() -
                             static_cast<double>(j) / b.size()));
  }
  return d;
}

struct EngineSamples {
  std::vector<std::uint64_t> winner_counts;  // indexed by value - lo
  std::vector<double> completion_steps;
  std::uint64_t effective_steps = 0;
};

EngineSamples collect(const Graph& graph, SelectionScheme scheme, Opinion lo,
                      Opinion hi, int replicas, std::uint64_t seed,
                      bool jump) {
  EngineSamples samples;
  samples.winner_counts.assign(static_cast<std::size_t>(hi - lo) + 1, 0);
  DivProcess process(graph, scheme);
  RunOptions options;
  options.max_steps = static_cast<std::uint64_t>(graph.num_vertices()) *
                      graph.num_vertices() * 1000;
  for (int replica = 0; replica < replicas; ++replica) {
    Rng rng(Rng::substream_seed(seed, static_cast<std::uint64_t>(replica)));
    OpinionState state(
        graph, uniform_random_opinions(graph.num_vertices(), lo, hi, rng));
    RunResult result;
    if (jump) {
      const JumpRunResult jump_result = run_jump(process, state, rng, options);
      samples.effective_steps += jump_result.effective_steps;
      result = jump_result;
    } else {
      result = run(process, state, rng, options);
    }
    EXPECT_EQ(result.status, RunStatus::kCompleted);
    if (!result.winner.has_value()) {
      ADD_FAILURE() << "replica " << replica << " finished without a winner";
      continue;
    }
    ++samples.winner_counts[static_cast<std::size_t>(*result.winner - lo)];
    samples.completion_steps.push_back(static_cast<double>(result.steps));
  }
  return samples;
}

TEST(JumpEngine, RejectsNonDivProcesses) {
  const Graph graph = make_complete(8);
  Rng rng(1);
  OpinionState state(graph, uniform_random_opinions(8, 1, 3, rng));
  RunOptions options;

  PullVoting pull(graph, SelectionScheme::kEdge);
  EXPECT_THROW(run_jump(pull, state, rng, options), std::invalid_argument);

  FaultyProcess faulty(
      std::make_unique<DivProcess>(graph, SelectionScheme::kEdge),
      /*drop_rate=*/0.5);
  EXPECT_THROW(run_jump(faulty, state, rng, options), std::invalid_argument);

  const JumpRunResult guarded = run_jump_guarded(faulty, state, rng, options);
  EXPECT_EQ(guarded.status, RunStatus::kFaulted);
  EXPECT_NE(guarded.fault.find("step engine"), std::string::npos);
}

TEST(JumpEngine, AlreadySatisfiedStopsAtZeroSteps) {
  const Graph graph = make_cycle(5);
  OpinionState state(graph, std::vector<Opinion>(5, 3));
  DivProcess process(graph, SelectionScheme::kVertex);
  Rng rng(2);
  const JumpRunResult result = run_jump(process, state, rng, RunOptions{});
  EXPECT_EQ(result.status, RunStatus::kCompleted);
  EXPECT_EQ(result.steps, 0u);
  EXPECT_EQ(result.effective_steps, 0u);
  ASSERT_TRUE(result.winner.has_value());
  EXPECT_EQ(*result.winner, 3);
}

TEST(JumpEngine, CapReportsScheduledSteps) {
  Rng rng(3);
  const Graph graph = make_connected_random_regular(64, 4, rng);
  OpinionState state(graph, uniform_random_opinions(64, 1, 6, rng));
  DivProcess process(graph, SelectionScheme::kEdge);
  RunOptions options;
  options.max_steps = 5;
  const JumpRunResult result = run_jump(process, state, rng, options);
  EXPECT_EQ(result.status, RunStatus::kCapped);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.steps, 5u);
  EXPECT_LE(result.effective_steps, result.steps);
}

TEST(JumpEngine, FrozenDisconnectedComponentsCapImmediately) {
  // Two disjoint, internally unanimous edges: no step can ever fire, which
  // the naive loop would discover only after max_steps no-ops.
  const Graph graph(4, {{0, 1}, {2, 3}});
  OpinionState state(graph, {1, 1, 2, 2});
  DivProcess process(graph, SelectionScheme::kEdge);
  Rng rng(4);
  RunOptions options;
  options.max_steps = 1000000;
  const JumpRunResult result = run_jump(process, state, rng, options);
  EXPECT_EQ(result.status, RunStatus::kCapped);
  EXPECT_EQ(result.steps, options.max_steps);
  EXPECT_EQ(result.effective_steps, 0u);
}

// Regression: the frozen-state and watchdog exits used to replay EVERY
// stride point of the terminal lazy stretch into the trace -- with stride 1
// and a 10^9-step cap that is a billion identical samples (a multi-GiB
// allocation burst).  The terminal stretch now records only its first and
// last stride points; a run that would have OOM'd stays within a handful of
// samples.
TEST(JumpEngine, FrozenTailTraceStaysTinyAtHugeStepCaps) {
  const Graph graph(4, {{0, 1}, {2, 3}});
  OpinionState state(graph, {1, 1, 2, 2});
  DivProcess process(graph, SelectionScheme::kEdge);
  Rng rng(4);
  RunOptions options;
  options.max_steps = 1'000'000'000;
  options.trace_stride = 1;  // worst case: every step is a stride point
  const JumpRunResult result = run_jump(process, state, rng, options);
  EXPECT_EQ(result.status, RunStatus::kCapped);
  EXPECT_EQ(result.steps, options.max_steps);
  // step 0, the first frozen stride point (1), and the last (max_steps).
  ASSERT_LE(result.trace.samples().size(), 4u);
  EXPECT_EQ(result.trace.samples().front().step, 0u);
  EXPECT_EQ(result.trace.samples().back().step, options.max_steps);
  // Frozen replay preserves the state in every sample.
  for (const TraceSample& sample : result.trace.samples()) {
    EXPECT_EQ(sample.min_active, 1);
    EXPECT_EQ(sample.max_active, 2);
  }
}

TEST(JumpEngine, TraceSamplesLieOnTheScheduledStrideGrid) {
  Rng rng(5);
  const Graph graph = make_connected_random_regular(48, 4, rng);
  OpinionState state(graph, uniform_random_opinions(48, 1, 4, rng));
  DivProcess process(graph, SelectionScheme::kVertex);
  RunOptions options;
  options.trace_stride = 64;
  const JumpRunResult result = run_jump(process, state, rng, options);
  ASSERT_EQ(result.status, RunStatus::kCompleted);
  ASSERT_FALSE(result.trace.empty());
  const auto& samples = result.trace.samples();
  EXPECT_EQ(samples.front().step, 0u);
  EXPECT_EQ(samples.back().step, result.steps);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i + 1 < samples.size()) {
      // Strictly increasing, and every interior sample is a stride multiple.
      EXPECT_LT(samples[i].step, samples[i + 1].step);
      if (i > 0) {
        EXPECT_EQ(samples[i].step % options.trace_stride, 0u);
      }
    }
  }
  // The lazy stretches are replayed: every stride point up to the final step
  // must be present, exactly as the naive engine would record it.
  const std::uint64_t interior =
      (result.steps - 1) / options.trace_stride;  // multiples in (0, steps)
  EXPECT_GE(samples.size(), interior);
}

TEST(JumpEngine, WinnerDistributionAndTimeMatchNaiveEngine) {
  Rng graph_rng(0x23a);
  const Graph graph = make_connected_random_regular(32, 4, graph_rng);
  constexpr int kReplicas = 400;
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    const EngineSamples naive =
        collect(graph, scheme, 1, 3, kReplicas, 0xbeef, /*jump=*/false);
    const EngineSamples jump =
        collect(graph, scheme, 1, 3, kReplicas, 0xcafe, /*jump=*/true);

    // The jump engine must actually skip work.
    double scheduled = 0.0;
    for (const double steps : jump.completion_steps) scheduled += steps;
    EXPECT_LT(static_cast<double>(jump.effective_steps), 0.8 * scheduled)
        << to_string(scheme);

    const double chi_p =
        two_sample_chi_square_p(naive.winner_counts, jump.winner_counts);
    EXPECT_GT(chi_p, 1e-3) << "winner distributions diverge, scheme "
                           << to_string(scheme);

    const double d = two_sample_ks_statistic(naive.completion_steps,
                                             jump.completion_steps);
    // KS critical value at alpha = 0.001 for n = m = kReplicas.
    const double critical =
        1.95 * std::sqrt(2.0 / static_cast<double>(kReplicas));
    EXPECT_LT(d, critical) << "completion-time ECDFs diverge, scheme "
                           << to_string(scheme);
  }
}

TEST(JumpEngine, WinnerDistributionMatchesExactChainOnSmallGraphs) {
  struct Case {
    const char* name;
    Graph graph;
    std::vector<Opinion> start;
    SelectionScheme scheme;
  };
  std::vector<Case> cases;
  cases.push_back({"path4/edge", make_path(4), {0, 2, 1, 0},
                   SelectionScheme::kEdge});
  cases.push_back({"cycle4/vertex", make_cycle(4), {0, 1, 2, 1},
                   SelectionScheme::kVertex});
  cases.push_back({"K4/edge", make_complete(4), {0, 1, 2, 2},
                   SelectionScheme::kEdge});

  constexpr int kReplicas = 2000;
  constexpr int kOpinions = 3;
  for (const Case& test_case : cases) {
    const DivChain chain(test_case.graph, kOpinions, test_case.scheme);
    const std::uint64_t encoded = chain.encode(test_case.start);
    const std::vector<double> exact = chain.absorption_distribution(encoded);
    const double exact_time = chain.expected_consensus_time(encoded);

    DivProcess process(test_case.graph, test_case.scheme);
    std::vector<std::uint64_t> winners(kOpinions, 0);
    Summary steps;
    for (int replica = 0; replica < kReplicas; ++replica) {
      Rng rng(Rng::substream_seed(0x17e, static_cast<std::uint64_t>(replica)));
      OpinionState state(test_case.graph, test_case.start);
      const JumpRunResult result =
          run_jump(process, state, rng, RunOptions{});
      ASSERT_EQ(result.status, RunStatus::kCompleted) << test_case.name;
      ++winners[static_cast<std::size_t>(*result.winner)];
      steps.add(static_cast<double>(result.steps));
    }

    const ChiSquareResult chi = chi_square_test(winners, exact);
    EXPECT_GT(chi.p_value, 1e-3) << test_case.name;
    EXPECT_NEAR(steps.mean(), exact_time, 5.0 * steps.stderror())
        << test_case.name;
  }
}

// ---------------------------------------------------------------------------
// Batched jump-chain parity: lane L of run_batch_jump, seeded like a scalar
// run_jump replica, must be BIT-identical to it -- the full JumpRunResult
// (including effective_steps and mode_switches), the final opinion vector,
// and the rng stream position (checked by comparing the next raw output).

void expect_same_jump_result(const JumpRunResult& scalar,
                             const JumpRunResult& lane,
                             const std::string& where) {
  EXPECT_EQ(scalar.status, lane.status) << where;
  EXPECT_EQ(scalar.completed, lane.completed) << where;
  EXPECT_EQ(scalar.steps, lane.steps) << where;
  EXPECT_EQ(scalar.effective_steps, lane.effective_steps) << where;
  EXPECT_EQ(scalar.mode_switches, lane.mode_switches) << where;
  EXPECT_EQ(scalar.min_active, lane.min_active) << where;
  EXPECT_EQ(scalar.max_active, lane.max_active) << where;
  EXPECT_EQ(scalar.num_active, lane.num_active) << where;
  EXPECT_EQ(scalar.final_sum, lane.final_sum) << where;
  EXPECT_DOUBLE_EQ(scalar.final_z, lane.final_z) << where;
  EXPECT_EQ(scalar.winner, lane.winner) << where;
}

// Runs kLanes scalar run_jump replicas (seed = retry_seed(master, lane, 0),
// initial opinions drawn by `init` from the SAME stream the lane will use)
// and the identical configuration through run_batch_jump, then asserts
// per-lane bit-identity on results, final opinions, and stream positions.
void expect_batch_jump_parity(
    const Graph& graph, SelectionScheme scheme, unsigned lanes,
    std::uint64_t master, const RunOptions& options,
    const std::function<std::vector<Opinion>(unsigned, Rng&)>& init) {
  DivProcess process(graph, scheme);
  std::vector<JumpRunResult> scalar(lanes);
  std::vector<std::vector<Opinion>> scalar_final(lanes);
  std::vector<std::uint64_t> scalar_next(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    Rng rng(Rng::retry_seed(master, lane, 0));
    OpinionState state(graph, init(lane, rng));
    scalar[lane] = run_jump(process, state, rng, options);
    scalar_final[lane].assign(state.opinions().begin(),
                              state.opinions().end());
    scalar_next[lane] = rng.next();
  }

  OpinionPlane plane(graph, lanes);
  std::vector<Rng> rngs;
  rngs.reserve(lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    rngs.emplace_back(Rng::retry_seed(master, lane, 0));
    plane.assign_lane(lane, init(lane, rngs[lane]));
  }
  const std::vector<JumpRunResult> batch =
      run_batch_jump(graph, scheme, plane, rngs, options);

  ASSERT_EQ(batch.size(), lanes);
  for (unsigned lane = 0; lane < lanes; ++lane) {
    const std::string where =
        std::string(to_string(scheme)) + " lane " + std::to_string(lane);
    expect_same_jump_result(scalar[lane], batch[lane], where);
    const auto lane_view = plane.lane_opinions(lane);
    ASSERT_EQ(lane_view.size(), scalar_final[lane].size()) << where;
    EXPECT_TRUE(std::equal(lane_view.begin(), lane_view.end(),
                           scalar_final[lane].begin()))
        << where;
    EXPECT_EQ(rngs[lane].next(), scalar_next[lane]) << where;
  }
}

TEST(BatchJump, LanesBitIdenticalToScalarJump) {
  Rng graph_rng(0x6a7d);
  const Graph graph = make_connected_random_regular(48, 4, graph_rng);
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    expect_batch_jump_parity(
        graph, scheme, /*lanes=*/8, /*master=*/0xabce, RunOptions{},
        [&graph](unsigned, Rng& rng) {
          return uniform_random_opinions(graph.num_vertices(), 1, 4, rng);
        });
  }
}

// Wide opinion ranges force the plane onto full-width cells; the batched
// jump lanes must survive the promotion (including lanes assigned narrow
// before the promoting wide lane) bit-identically.
TEST(BatchJump, WidePlaneLanesMatchScalarJump) {
  Rng graph_rng(0x77df);
  const Graph graph = make_connected_random_regular(40, 4, graph_rng);
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    expect_batch_jump_parity(
        graph, scheme, /*lanes=*/6, /*master=*/0x51df, RunOptions{},
        [&graph](unsigned lane, Rng& rng) {
          const Opinion hi = (lane % 2 == 0) ? 4 : 300;
          return uniform_random_opinions(graph.num_vertices(), 1, hi, rng);
        });
  }
}

// Mixed-mode groups: dense lanes (wide uniform start -> hysteresis drops
// them to naive scheduled stepping) share the clock with near-consensus
// lanes that stay lazy in jump mode.  Each lane's independent mode history
// must match its scalar run exactly -- the shared horizon re-orders work
// across lanes but never changes any lane's own sequence.
TEST(BatchJump, MixedModeLanesStayIndependent) {
  Rng graph_rng(0x3a2e);
  const Graph graph = make_connected_random_regular(64, 4, graph_rng);
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    expect_batch_jump_parity(
        graph, scheme, /*lanes=*/8, /*master=*/0x8a8a, RunOptions{},
        [&graph](unsigned lane, Rng& rng) {
          if (lane % 2 == 0) {
            // Dense: wide spread, almost every pair discordant.
            return uniform_random_opinions(graph.num_vertices(), 1, 8, rng);
          }
          // Lazy: unanimity except one vertex one level up.
          std::vector<Opinion> opinions(graph.num_vertices(), 2);
          opinions[lane] = 3;
          return opinions;
        });
  }
}

// Frozen lanes (discordance hits zero without the stop rule holding, only
// possible on disconnected graphs) idle straight to the cap, and lanes whose
// components disagree forever cap too -- in both cases bit-identically to
// the scalar watchdog, without consuming stray draws.
TEST(BatchJump, FrozenAndCappedLanesMatchScalarJump) {
  const Graph graph(4, {{0, 1}, {2, 3}});
  RunOptions options;
  options.max_steps = 100000;
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    expect_batch_jump_parity(
        graph, scheme, /*lanes=*/4, /*master=*/0xf02e, options,
        [](unsigned lane, Rng&) {
          return lane % 2 == 0 ? std::vector<Opinion>{1, 1, 2, 2}
                               : std::vector<Opinion>{1, 2, 2, 1};
        });
  }
}

// A step budget that straddles several naive windows (4096) and draw blocks
// (32) at an odd offset: capped lanes must stop at exactly max_steps with
// the scalar effective_steps/mode_switches tallies.
TEST(BatchJump, StepCapParity) {
  Rng graph_rng(0x9b2);
  const Graph graph = make_connected_random_regular(48, 4, graph_rng);
  RunOptions options;
  options.max_steps = 3 * kNaiveWindow + 17;
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    expect_batch_jump_parity(
        graph, scheme, /*lanes=*/6, /*master=*/0x5eee, options,
        [&graph](unsigned, Rng& rng) {
          return uniform_random_opinions(graph.num_vertices(), 1, 6, rng);
        });
  }
}

}  // namespace
}  // namespace divlib
