#include "core/cancel.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/jump_engine.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(CancelToken, RequestIsStickyUntilReset) {
  CancelToken token;
  EXPECT_FALSE(token.requested());
  token.request();
  EXPECT_TRUE(token.requested());
  token.request();  // idempotent
  EXPECT_TRUE(token.requested());
  token.reset();
  EXPECT_FALSE(token.requested());
}

TEST(CancelToken, GlobalIsASingleton) {
  EXPECT_EQ(&CancelToken::global(), &CancelToken::global());
  CancelToken::global().reset();
}

TEST(CancelToken, FirstReasonWins) {
  CancelToken token;
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  token.request(CancelReason::kDeadline);
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  // A later, different reason must not overwrite the first: the supervisor
  // races deadline kills against supersede/user cancels and the verdict
  // must be stable no matter who fires second.
  token.request(CancelReason::kUser);
  token.request(CancelReason::kSuperseded);
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  token.reset();
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  // Reason-less request (the signal handler path) records kUser.
  token.request();
  EXPECT_EQ(token.reason(), CancelReason::kUser);
  token.reset();
}

TEST(CancelToken, ReasonNamesAreStable) {
  EXPECT_STREQ(to_string(CancelReason::kNone), "none");
  EXPECT_STREQ(to_string(CancelReason::kUser), "user");
  EXPECT_STREQ(to_string(CancelReason::kDeadline), "deadline");
  EXPECT_STREQ(to_string(CancelReason::kSuperseded), "superseded");
}

// A token fired with kDeadline makes BOTH engines report kDeadline -- the
// status the supervisor uses to tell a wall-clock kill from an operator
// drain -- while any other reason still maps to kCancelled.
TEST(Cancellation, DeadlineReasonYieldsDeadlineStatusFromBothEngines) {
  const Graph g = make_complete(16);
  CancelToken token;
  token.request(CancelReason::kDeadline);
  RunOptions options;
  options.max_steps = 1000;
  options.cancel = &token;

  Rng init_rng(7);
  const std::vector<Opinion> start =
      uniform_random_opinions(g.num_vertices(), 1, 5, init_rng);

  OpinionState step_state(g, start);
  DivProcess step_process(g, SelectionScheme::kEdge);
  Rng step_rng(11);
  const RunResult step_result =
      run(step_process, step_state, step_rng, options);
  EXPECT_EQ(step_result.status, RunStatus::kDeadline);
  EXPECT_FALSE(step_result.completed);
  EXPECT_EQ(step_result.steps, 0u);

  OpinionState jump_state(g, start);
  DivProcess jump_process(g, SelectionScheme::kEdge);
  Rng jump_rng(11);
  const JumpRunResult jump_result =
      run_jump(jump_process, jump_state, jump_rng, options);
  EXPECT_EQ(jump_result.status, RunStatus::kDeadline);

  EXPECT_EQ(drained_status(token), RunStatus::kDeadline);
  CancelToken user_token;
  user_token.request(CancelReason::kUser);
  EXPECT_EQ(drained_status(user_token), RunStatus::kCancelled);
  CancelToken superseded_token;
  superseded_token.request(CancelReason::kSuperseded);
  EXPECT_EQ(drained_status(superseded_token), RunStatus::kCancelled);
  EXPECT_STREQ(to_string(RunStatus::kDeadline), "deadline");
}

// A pre-set token must yield kCancelled -- never kCapped -- from BOTH
// engines, with the state untouched (the cancellation step is step 0) and
// bit-identical between them.
TEST(Cancellation, PresetTokenYieldsCancelledFromBothEngines) {
  const Graph g = make_complete(32);
  CancelToken token;
  token.request();
  RunOptions options;
  options.max_steps = 1000;
  options.cancel = &token;

  Rng init_rng(7);
  const std::vector<Opinion> start =
      uniform_random_opinions(g.num_vertices(), 1, 6, init_rng);

  OpinionState step_state(g, start);
  DivProcess step_process(g, SelectionScheme::kEdge);
  Rng step_rng(11);
  const RunResult step_result = run(step_process, step_state, step_rng, options);
  EXPECT_EQ(step_result.status, RunStatus::kCancelled);
  EXPECT_NE(step_result.status, RunStatus::kCapped);
  EXPECT_EQ(step_result.steps, 0u);
  EXPECT_FALSE(step_result.completed);

  OpinionState jump_state(g, start);
  DivProcess jump_process(g, SelectionScheme::kEdge);
  Rng jump_rng(11);
  const JumpRunResult jump_result =
      run_jump(jump_process, jump_state, jump_rng, options);
  EXPECT_EQ(jump_result.status, RunStatus::kCancelled);
  EXPECT_EQ(jump_result.steps, 0u);
  EXPECT_EQ(jump_result.effective_steps, 0u);

  // Identical final states at the cancellation step.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(step_state.opinion(v), jump_state.opinion(v));
  }
  EXPECT_EQ(step_result.final_sum, jump_result.final_sum);
  EXPECT_EQ(step_result.min_active, jump_result.min_active);
  EXPECT_EQ(step_result.max_active, jump_result.max_active);
}

TEST(Cancellation, GuardedVariantsMapCancelConsistently) {
  const Graph g = make_complete(16);
  CancelToken token;
  token.request();
  RunOptions options;
  options.cancel = &token;

  Rng init_rng(3);
  const std::vector<Opinion> start =
      uniform_random_opinions(g.num_vertices(), 1, 5, init_rng);

  OpinionState a(g, start);
  DivProcess pa(g, SelectionScheme::kEdge);
  Rng ra(5);
  const RunResult guarded = run_guarded(pa, a, ra, options);
  EXPECT_EQ(guarded.status, RunStatus::kCancelled);
  EXPECT_TRUE(guarded.fault.empty());

  OpinionState b(g, start);
  DivProcess pb(g, SelectionScheme::kEdge);
  Rng rb(5);
  const JumpRunResult jump_guarded = run_jump_guarded(pb, b, rb, options);
  EXPECT_EQ(jump_guarded.status, RunStatus::kCancelled);
  EXPECT_TRUE(jump_guarded.fault.empty());
}

// Wraps DivProcess and fires the token after a fixed number of steps, so the
// drain-at-step-boundary contract is observable mid-run.
class CancelAfter : public Process {
 public:
  CancelAfter(const Graph& graph, CancelToken& token, std::uint64_t after)
      : inner_(graph, SelectionScheme::kEdge), token_(&token), after_(after) {}

  void begin_run(const OpinionState& state) override {
    steps_ = 0;
    inner_.begin_run(state);
  }

  void step(OpinionState& state, Rng& rng) override {
    inner_.step(state, rng);
    if (++steps_ == after_) {
      token_->request();
    }
  }

  std::string name() const override { return "cancel-after"; }

 private:
  DivProcess inner_;
  CancelToken* token_;
  std::uint64_t after_;
  std::uint64_t steps_ = 0;
};

TEST(Cancellation, MidRunCancelDrainsAtStepBoundary) {
  const Graph g = make_complete(64);
  CancelToken token;
  CancelAfter process(g, token, 100);
  RunOptions options;
  options.max_steps = 1'000'000;
  options.cancel = &token;
  Rng rng(17);
  OpinionState state(
      g, uniform_random_opinions(g.num_vertices(), 1, 9, rng));
  const RunResult result = run(process, state, rng, options);
  EXPECT_EQ(result.status, RunStatus::kCancelled);
  // The triggering step completes; the loop drains before the next one.
  EXPECT_EQ(result.steps, 100u);
}

TEST(Cancellation, SatisfiedStopWinsOverCancellation) {
  // When the stopping rule already holds, the run reports kCompleted even if
  // the token fired: the work IS done.
  const Graph g = make_complete(8);
  CancelToken token;
  token.request();
  RunOptions options;
  options.cancel = &token;
  DivProcess process(g, SelectionScheme::kEdge);
  OpinionState state(g, std::vector<Opinion>(g.num_vertices(), 3));
  Rng rng(1);
  const RunResult result = run(process, state, rng, options);
  EXPECT_EQ(result.status, RunStatus::kCompleted);
  EXPECT_TRUE(result.completed);
}

TEST(Cancellation, IsolatedDriverStopsClaimingReplicas) {
  CancelToken token;
  std::atomic<std::size_t> ran{0};
  const BatchReport report = run_replicas_isolated_erased(
      64,
      [&](std::size_t replica, Rng&) {
        ran.fetch_add(1);
        if (replica == 0) {
          token.request();  // fires while most replicas are still queued
        }
      },
      {.master_seed = 5, .num_threads = 1, .cancel = &token});
  EXPECT_TRUE(report.cancelled);
  EXPECT_LT(report.attempted, report.replicas);
  EXPECT_EQ(report.attempted, ran.load());
  EXPECT_TRUE(report.ok());  // cancelled replicas are not errors
}

TEST(Cancellation, UntriggeredTokenChangesNothing) {
  const Graph g = make_complete(24);
  CancelToken token;
  RunOptions with;
  with.max_steps = 200'000;
  with.cancel = &token;
  RunOptions without = with;
  without.cancel = nullptr;

  Rng init_rng(9);
  const std::vector<Opinion> start =
      uniform_random_opinions(g.num_vertices(), 1, 6, init_rng);

  OpinionState a(g, start);
  DivProcess pa(g, SelectionScheme::kEdge);
  Rng ra(13);
  const RunResult with_token = run(pa, a, ra, with);

  OpinionState b(g, start);
  DivProcess pb(g, SelectionScheme::kEdge);
  Rng rb(13);
  const RunResult no_token = run(pb, b, rb, without);

  EXPECT_EQ(with_token.status, no_token.status);
  EXPECT_EQ(with_token.steps, no_token.steps);
  EXPECT_EQ(with_token.final_sum, no_token.final_sum);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(a.opinion(v), b.opinion(v));
  }
}

}  // namespace
}  // namespace divlib
