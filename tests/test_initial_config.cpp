#include "engine/initial_config.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

namespace divlib {
namespace {

TEST(InitialConfig, UniformRandomStaysInRange) {
  Rng rng(1);
  const auto opinions = uniform_random_opinions(1000, 2, 7, rng);
  ASSERT_EQ(opinions.size(), 1000u);
  for (const Opinion o : opinions) {
    EXPECT_GE(o, 2);
    EXPECT_LE(o, 7);
  }
  EXPECT_THROW(uniform_random_opinions(10, 5, 4, rng), std::invalid_argument);
}

TEST(InitialConfig, UniformRandomCoversAllValues) {
  Rng rng(2);
  const auto opinions = uniform_random_opinions(2000, 1, 5, rng);
  for (Opinion value = 1; value <= 5; ++value) {
    EXPECT_GT(std::count(opinions.begin(), opinions.end(), value), 0);
  }
}

TEST(InitialConfig, CountsAreExact) {
  Rng rng(3);
  const auto opinions = opinions_with_counts(10, 1, {3, 0, 7}, rng);
  EXPECT_EQ(std::count(opinions.begin(), opinions.end(), 1), 3);
  EXPECT_EQ(std::count(opinions.begin(), opinions.end(), 2), 0);
  EXPECT_EQ(std::count(opinions.begin(), opinions.end(), 3), 7);
}

TEST(InitialConfig, CountsMustSumToN) {
  Rng rng(4);
  EXPECT_THROW(opinions_with_counts(10, 1, {3, 3}, rng), std::invalid_argument);
}

TEST(InitialConfig, BlocksAreContiguous) {
  const auto opinions = block_opinions(6, 5, {2, 1, 3});
  const std::vector<Opinion> expected{5, 5, 6, 7, 7, 7};
  EXPECT_EQ(opinions, expected);
}

TEST(InitialConfig, TwoValueSplit) {
  Rng rng(5);
  const auto opinions = two_value_opinions(20, 0, 9, 6, rng);
  EXPECT_EQ(std::count(opinions.begin(), opinions.end(), 9), 6);
  EXPECT_EQ(std::count(opinions.begin(), opinions.end(), 0), 14);
  EXPECT_THROW(two_value_opinions(5, 0, 1, 6, rng), std::invalid_argument);
}

TEST(InitialConfig, RampCyclesThroughRange) {
  const auto opinions = ramp_opinions(7, 1, 3);
  const std::vector<Opinion> expected{1, 2, 3, 1, 2, 3, 1};
  EXPECT_EQ(opinions, expected);
}

TEST(InitialConfig, BinomialOpinionsShape) {
  Rng rng(9);
  const auto opinions = binomial_opinions(20000, 1, 9, 0.5, rng);
  double mean = 0.0;
  for (const Opinion o : opinions) {
    ASSERT_GE(o, 1);
    ASSERT_LE(o, 9);
    mean += o;
  }
  mean /= opinions.size();
  EXPECT_NEAR(mean, 5.0, 0.05);  // lo + p*(hi-lo) = 1 + 4
  // The center outweighs the extremes heavily.
  const auto count = [&](Opinion v) {
    return std::count(opinions.begin(), opinions.end(), v);
  };
  EXPECT_GT(count(5), 10 * count(1));
  EXPECT_THROW(binomial_opinions(10, 1, 5, 1.5, rng), std::invalid_argument);
}

TEST(InitialConfig, BinomialDegenerateP) {
  Rng rng(10);
  const auto all_low = binomial_opinions(50, 2, 7, 0.0, rng);
  EXPECT_TRUE(std::all_of(all_low.begin(), all_low.end(),
                          [](Opinion o) { return o == 2; }));
  const auto all_high = binomial_opinions(50, 2, 7, 1.0, rng);
  EXPECT_TRUE(std::all_of(all_high.begin(), all_high.end(),
                          [](Opinion o) { return o == 7; }));
}

TEST(InitialConfig, PolarizedOpinions) {
  Rng rng(11);
  const auto opinions = polarized_opinions(20000, 1, 5, 0.7, 0.2, rng);
  std::int64_t low_camp = 0;
  for (const Opinion o : opinions) {
    ASSERT_TRUE(o == 1 || o == 2 || o == 4 || o == 5);
    low_camp += (o <= 2) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(low_camp) / opinions.size(), 0.7, 0.02);
  const auto moderates = std::count_if(opinions.begin(), opinions.end(),
                                       [](Opinion o) { return o == 2 || o == 4; });
  EXPECT_NEAR(static_cast<double>(moderates) / opinions.size(), 0.2, 0.02);
  EXPECT_THROW(polarized_opinions(10, 3, 3, 0.5, 0.1, rng),
               std::invalid_argument);
  EXPECT_THROW(polarized_opinions(10, 1, 5, 1.5, 0.1, rng),
               std::invalid_argument);
}

TEST(InitialConfig, OpinionsWithSumHitsTargetExactly) {
  Rng rng(6);
  for (const std::int64_t target : {100L, 250L, 499L}) {
    const auto opinions = opinions_with_sum(100, 1, 5, target, rng);
    const std::int64_t sum =
        std::accumulate(opinions.begin(), opinions.end(), std::int64_t{0});
    EXPECT_EQ(sum, target);
    for (const Opinion o : opinions) {
      EXPECT_GE(o, 1);
      EXPECT_LE(o, 5);
    }
  }
}

TEST(InitialConfig, OpinionsWithSumBoundaryTargets) {
  Rng rng(7);
  const auto all_low = opinions_with_sum(10, 2, 6, 20, rng);
  EXPECT_TRUE(std::all_of(all_low.begin(), all_low.end(),
                          [](Opinion o) { return o == 2; }));
  const auto all_high = opinions_with_sum(10, 2, 6, 60, rng);
  EXPECT_TRUE(std::all_of(all_high.begin(), all_high.end(),
                          [](Opinion o) { return o == 6; }));
}

TEST(InitialConfig, OpinionsWithSumRejectsUnreachableTargets) {
  Rng rng(8);
  EXPECT_THROW(opinions_with_sum(10, 1, 5, 9, rng), std::invalid_argument);
  EXPECT_THROW(opinions_with_sum(10, 1, 5, 51, rng), std::invalid_argument);
}

}  // namespace
}  // namespace divlib
