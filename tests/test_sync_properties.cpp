// Parameterized invariants for the synchronous-round processes, mirroring
// the asynchronous property suite:
//
//   S1. Opinions never leave the initial range.
//   S2. The active range never expands.
//   S3. Consensus states are absorbing (round-wise).
//   S4. Aggregates match a full rescan after many rounds.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <tuple>

#include "core/sync_process.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"

namespace divlib {
namespace {

enum class SyncKind { kDiv, kPull, kMedian };

std::string sync_kind_name(SyncKind kind) {
  switch (kind) {
    case SyncKind::kDiv:
      return "SyncDiv";
    case SyncKind::kPull:
      return "SyncPull";
    case SyncKind::kMedian:
      return "SyncMedian";
  }
  return "Unknown";
}

std::unique_ptr<SyncProcess> make_sync(SyncKind kind, const Graph& graph) {
  switch (kind) {
    case SyncKind::kDiv:
      return std::make_unique<SyncDivProcess>(graph);
    case SyncKind::kPull:
      return std::make_unique<SyncPullVoting>(graph);
    case SyncKind::kMedian:
      return std::make_unique<SyncMedianVoting>(graph);
  }
  return nullptr;
}

enum class SyncGraphKind { kComplete, kCycle, kStar, kHypercube, kRandomRegular };

std::string sync_graph_name(SyncGraphKind kind) {
  switch (kind) {
    case SyncGraphKind::kComplete:
      return "Complete";
    case SyncGraphKind::kCycle:
      return "Cycle";
    case SyncGraphKind::kStar:
      return "Star";
    case SyncGraphKind::kHypercube:
      return "Hypercube";
    case SyncGraphKind::kRandomRegular:
      return "RandomRegular";
  }
  return "Unknown";
}

Graph make_sync_graph(SyncGraphKind kind) {
  Rng rng(0xabc);
  switch (kind) {
    case SyncGraphKind::kComplete:
      return make_complete(20);
    case SyncGraphKind::kCycle:
      return make_cycle(21);
    case SyncGraphKind::kStar:
      return make_star(20);
    case SyncGraphKind::kHypercube:
      return make_hypercube(4);
    case SyncGraphKind::kRandomRegular:
      return make_connected_random_regular(20, 4, rng);
  }
  return Graph();
}

using SyncParam = std::tuple<SyncKind, SyncGraphKind>;

class SyncInvariants : public ::testing::TestWithParam<SyncParam> {};

TEST_P(SyncInvariants, OpinionsStayInInitialRange) {
  const auto [kind, graph_kind] = GetParam();
  const Graph graph = make_sync_graph(graph_kind);
  Rng rng(1);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 6, rng));
  const auto process = make_sync(kind, graph);
  for (int round = 0; round < 300; ++round) {
    process->round(state, rng);
    ASSERT_GE(state.min_active(), 1);
    ASSERT_LE(state.max_active(), 6);
  }
}

TEST_P(SyncInvariants, ActiveRangeNeverExpands) {
  const auto [kind, graph_kind] = GetParam();
  const Graph graph = make_sync_graph(graph_kind);
  Rng rng(2);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 6, rng));
  const auto process = make_sync(kind, graph);
  Opinion lo = state.min_active();
  Opinion hi = state.max_active();
  for (int round = 0; round < 300; ++round) {
    process->round(state, rng);
    ASSERT_GE(state.min_active(), lo);
    ASSERT_LE(state.max_active(), hi);
    lo = state.min_active();
    hi = state.max_active();
  }
}

TEST_P(SyncInvariants, ConsensusIsAbsorbing) {
  const auto [kind, graph_kind] = GetParam();
  const Graph graph = make_sync_graph(graph_kind);
  OpinionState state(graph, std::vector<Opinion>(graph.num_vertices(), 3));
  const auto process = make_sync(kind, graph);
  Rng rng(3);
  for (int round = 0; round < 100; ++round) {
    process->round(state, rng);
    ASSERT_TRUE(state.is_consensus());
    ASSERT_EQ(state.min_active(), 3);
  }
}

TEST_P(SyncInvariants, AggregatesMatchFullRescan) {
  const auto [kind, graph_kind] = GetParam();
  const Graph graph = make_sync_graph(graph_kind);
  Rng rng(4);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 5, rng));
  const auto process = make_sync(kind, graph);
  for (int round = 0; round < 200; ++round) {
    process->round(state, rng);
  }
  std::int64_t sum = 0;
  std::int64_t weighted = 0;
  Opinion lo = state.opinion(0);
  Opinion hi = state.opinion(0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Opinion o = state.opinion(v);
    sum += o;
    weighted += static_cast<std::int64_t>(graph.degree(v)) * o;
    lo = std::min(lo, o);
    hi = std::max(hi, o);
  }
  EXPECT_EQ(state.sum(), sum);
  EXPECT_EQ(state.degree_weighted_sum(), weighted);
  EXPECT_EQ(state.min_active(), lo);
  EXPECT_EQ(state.max_active(), hi);
}

INSTANTIATE_TEST_SUITE_P(
    AllSyncProcesses, SyncInvariants,
    ::testing::Combine(::testing::Values(SyncKind::kDiv, SyncKind::kPull,
                                         SyncKind::kMedian),
                       ::testing::Values(SyncGraphKind::kComplete,
                                         SyncGraphKind::kCycle,
                                         SyncGraphKind::kStar,
                                         SyncGraphKind::kHypercube,
                                         SyncGraphKind::kRandomRegular)),
    [](const ::testing::TestParamInfo<SyncParam>& info) {
      return sync_kind_name(std::get<0>(info.param)) + "_" +
             sync_graph_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace divlib
