#include "exact/div_chain.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "spectral/linear_solver.hpp"
#include "stats/histogram.hpp"

namespace divlib {
namespace {

TEST(DivChain, GuardsStateSpace) {
  const Graph g = make_complete(8);
  EXPECT_THROW(DivChain(g, 5, SelectionScheme::kEdge), std::invalid_argument);
  EXPECT_THROW(DivChain(g, 1, SelectionScheme::kEdge), std::invalid_argument);
}

TEST(DivChain, EncodeDecodeRoundTrip) {
  const Graph g = make_path(4);
  const DivChain chain(g, 3, SelectionScheme::kEdge);
  for (std::uint64_t state = 0; state < chain.num_states(); ++state) {
    EXPECT_EQ(chain.encode(chain.decode(state)), state);
  }
}

TEST(DivChain, AbsorptionDistributionsAreProbabilities) {
  const Graph g = make_cycle(4);
  const DivChain chain(g, 3, SelectionScheme::kVertex);
  for (std::uint64_t state = 0; state < chain.num_states(); ++state) {
    const auto distribution = chain.absorption_distribution(state);
    double total = 0.0;
    for (const double p : distribution) {
      EXPECT_GE(p, -1e-12);
      EXPECT_LE(p, 1.0 + 1e-12);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9) << "state " << state;
  }
}

TEST(DivChain, ConsensusStatesAreAbsorbing) {
  const Graph g = make_path(3);
  const DivChain chain(g, 3, SelectionScheme::kEdge);
  const auto all_two = chain.encode({2, 2, 2});
  EXPECT_DOUBLE_EQ(chain.absorption_probability(all_two, 2), 1.0);
  EXPECT_DOUBLE_EQ(chain.absorption_probability(all_two, 0), 0.0);
  EXPECT_DOUBLE_EQ(chain.expected_consensus_time(all_two), 0.0);
}

TEST(DivChain, EdgeProcessExpectedWinnerIsTheAverageExactly) {
  // The Lemma 3 martingale, exactly: E[winner] = S(0)/n for every initial
  // state under the edge process, on ANY graph.
  for (const Graph& g : {make_path(5), make_cycle(5), make_star(5),
                         make_complete(5)}) {
    const DivChain chain(g, 3, SelectionScheme::kEdge);
    for (std::uint64_t state = 0; state < chain.num_states(); ++state) {
      const auto opinions = chain.decode(state);
      const double average =
          std::accumulate(opinions.begin(), opinions.end(), 0.0) / 5.0;
      ASSERT_NEAR(chain.expected_winner(state), average, 1e-9)
          << g.summary() << " state " << state;
    }
  }
}

TEST(DivChain, VertexProcessExpectedWinnerIsTheWeightedAverage) {
  // Z(t)/n martingale: E[winner] = sum pi_v X_v exactly, on irregular graphs.
  const Graph g = make_star(5);
  const DivChain chain(g, 3, SelectionScheme::kVertex);
  for (std::uint64_t state = 0; state < chain.num_states(); ++state) {
    const auto opinions = chain.decode(state);
    double weighted = 0.0;
    for (VertexId v = 0; v < 5; ++v) {
      weighted += g.stationary(v) * static_cast<double>(opinions[v]);
    }
    ASSERT_NEAR(chain.expected_winner(state), weighted, 1e-9)
        << "state " << state;
  }
}

TEST(DivChain, PathCounterexampleExactProbabilities) {
  // The [13] counterexample at exactly computable size: blocked 0|1|2 on
  // P_6.  All three opinions must have strictly positive win probability,
  // and by the left-right symmetry of the configuration P(0) = P(2).
  const Graph g = make_path(6);
  const DivChain chain(g, 3, SelectionScheme::kEdge);
  const auto state = chain.encode({0, 0, 1, 1, 2, 2});
  const auto distribution = chain.absorption_distribution(state);
  // The exact values are clean rationals: P(0) = P(2) = 2/9, P(1) = 5/9.
  EXPECT_NEAR(distribution[0], 2.0 / 9.0, 1e-9);
  EXPECT_NEAR(distribution[1], 5.0 / 9.0, 1e-9);
  EXPECT_NEAR(distribution[2], 2.0 / 9.0, 1e-9);
  EXPECT_NEAR(chain.expected_winner(state), 1.0, 1e-9);
}

TEST(DivChain, MonteCarloMatchesExactDistribution) {
  const Graph g = make_path(6);
  const DivChain chain(g, 3, SelectionScheme::kEdge);
  const std::vector<Opinion> start{0, 0, 1, 1, 2, 2};
  const auto exact = chain.absorption_distribution(chain.encode(start));

  constexpr int kReplicas = 6000;
  const auto winners = run_replicas<Opinion>(
      kReplicas,
      [&g, &start](std::size_t, Rng& rng) {
        OpinionState state(g, start);
        DivProcess process(g, SelectionScheme::kEdge);
        RunOptions options;
        options.max_steps = 10'000'000;
        return run(process, state, rng, options).winner.value_or(-1);
      },
      {.master_seed = 91});
  IntCounter counter;
  for (const Opinion w : winners) {
    counter.add(w);
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(counter.fraction(j), exact[static_cast<std::size_t>(j)], 0.02)
        << "opinion " << j;
  }
}

TEST(DivChain, ExpectedTimeMatchesMonteCarlo) {
  const Graph g = make_cycle(5);
  const DivChain chain(g, 3, SelectionScheme::kVertex);
  const std::vector<Opinion> start{0, 1, 2, 1, 0};
  const double exact_time = chain.expected_consensus_time(chain.encode(start));

  constexpr int kReplicas = 4000;
  const auto steps = run_replicas<double>(
      kReplicas,
      [&g, &start](std::size_t, Rng& rng) {
        OpinionState state(g, start);
        DivProcess process(g, SelectionScheme::kVertex);
        RunOptions options;
        options.max_steps = 10'000'000;
        return static_cast<double>(run(process, state, rng, options).steps);
      },
      {.master_seed = 92});
  double mean = 0.0;
  for (const double s : steps) {
    mean += s / kReplicas;
  }
  EXPECT_NEAR(mean, exact_time, exact_time * 0.05);
}

TEST(LuFactorization, MatchesDirectSolver) {
  DenseMatrix a(3, 3);
  a.at(0, 0) = 4.0;
  a.at(0, 1) = 1.0;
  a.at(0, 2) = 2.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 5.0;
  a.at(1, 2) = 1.0;
  a.at(2, 0) = 2.0;
  a.at(2, 1) = 1.0;
  a.at(2, 2) = 6.0;
  const LuFactorization lu(a);
  const std::vector<double> b1{1.0, 2.0, 3.0};
  const std::vector<double> b2{-1.0, 0.5, 4.0};
  const auto x1 = lu.solve(b1);
  const auto x2 = lu.solve(b2);
  const auto y1 = solve_linear_system(a, b1);
  const auto y2 = solve_linear_system(a, b2);
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(x1[static_cast<std::size_t>(i)], y1[static_cast<std::size_t>(i)], 1e-12);
    EXPECT_NEAR(x2[static_cast<std::size_t>(i)], y2[static_cast<std::size_t>(i)], 1e-12);
  }
}

}  // namespace
}  // namespace divlib
