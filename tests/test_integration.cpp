// End-to-end reproductions of the paper's headline claims at test scale
// (the benchmark binaries rerun them at larger scale with full tables).
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/div_process.hpp"
#include "core/theory.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "spectral/lambda.hpp"
#include "stats/histogram.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

// Theorem 2 on the complete graph: DIV converges to floor(c) or ceil(c) with
// the predicted probabilities.
TEST(Integration, Theorem2WinDistributionOnCompleteGraph) {
  const Graph g = make_complete(60);
  // Exact sum 150 => c = 2.5: floor/ceil equally likely.
  constexpr int kReplicas = 1200;
  const auto winners = run_replicas<Opinion>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        OpinionState state(g, opinions_with_sum(60, 1, 4, 150, rng));
        DivProcess process(g, SelectionScheme::kEdge);
        RunOptions options;
        options.max_steps = 20'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-99);
      },
      {.master_seed = 101});
  IntCounter counter;
  for (const Opinion w : winners) {
    counter.add(w);
  }
  // W.h.p. is asymptotic; at n = 60 a small fraction of runs drift to an
  // adjacent value.  Require near-total mass on {2, 3}, split evenly.
  const double on_target = counter.fraction(2) + counter.fraction(3);
  EXPECT_GT(on_target, 0.98);
  EXPECT_NEAR(counter.fraction(2), 0.5, 0.06);
  EXPECT_NEAR(counter.fraction(3), 0.5, 0.06);
}

TEST(Integration, Theorem2SkewedAverage) {
  const Graph g = make_complete(150);
  // Sum 330 => c = 2.2: P(2) ~ 0.8, P(3) ~ 0.2.
  constexpr int kReplicas = 1200;
  const auto winners = run_replicas<Opinion>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        OpinionState state(g, opinions_with_sum(150, 1, 5, 330, rng));
        DivProcess process(g, SelectionScheme::kEdge);
        RunOptions options;
        options.max_steps = 20'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-99);
      },
      {.master_seed = 102});
  IntCounter counter;
  for (const Opinion w : winners) {
    counter.add(w);
  }
  const auto prediction = theory::win_distribution(2.2);
  EXPECT_EQ(prediction.low, 2);
  EXPECT_GT(counter.fraction(2) + counter.fraction(3), 0.97);
  EXPECT_NEAR(counter.fraction(2), prediction.p_low, 0.08);
  EXPECT_NEAR(counter.fraction(3), prediction.p_high, 0.08);
}

// Vertex process on an irregular expander: the *degree-weighted* average
// decides, per Theorem 2 + Lemma 5(iii).
TEST(Integration, VertexProcessUsesWeightedAverage) {
  Rng graph_rng(7);
  // Complete bipartite K_{10,30}: degrees 30 and 10, connected non-regular
  // with small lambda on the squared walk... (bipartite, lambda = 1, but the
  // weighted-average martingale argument (Lemma 3/5) is exact at the final
  // stage regardless).  Use the two-opinion final stage directly.
  const Graph g = make_complete_bipartite(10, 30);
  // Opinions {4 on the small side, 1 on the big side}: two non-adjacent
  // values would not be a final stage, so use {1,2}: small side 2, big 1.
  // Weighted average = sum pi_v X_v = (300/600)*2 + (300/600)*1 = 1.5.
  constexpr int kReplicas = 1500;
  const auto winners = run_replicas<Opinion>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        std::vector<Opinion> opinions(40, 1);
        for (VertexId v = 0; v < 10; ++v) {
          opinions[v] = 2;
        }
        OpinionState state(g, std::move(opinions));
        DivProcess process(g, SelectionScheme::kVertex);
        RunOptions options;
        options.max_steps = 20'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-99);
      },
      {.master_seed = 103});
  IntCounter counter;
  for (const Opinion w : winners) {
    counter.add(w);
  }
  // Weighted average 1.5 => each side wins ~50% even though opinion 2 is
  // held by only 25% of vertices (plain average 1.25).
  EXPECT_NEAR(counter.fraction(2), 0.5, 0.05);
}

// Theorem 1: reduction to two adjacent opinions in far fewer than n^2 steps
// on expanders, and E[T] grows sub-quadratically in n.
TEST(Integration, Theorem1ReductionIsSubquadratic) {
  Rng graph_rng(11);
  std::vector<double> ns;
  std::vector<double> times;
  for (const VertexId n : {64u, 128u, 256u}) {
    const Graph g = make_connected_random_regular(n, 12, graph_rng);
    constexpr int kReplicas = 40;
    const auto steps = run_replicas<double>(
        kReplicas,
        [&g, n](std::size_t, Rng& rng) {
          OpinionState state(g, uniform_random_opinions(n, 1, 5, rng));
          DivProcess process(g, SelectionScheme::kVertex);
          RunOptions options;
          options.stop = StopKind::kTwoAdjacent;
          options.max_steps = static_cast<std::uint64_t>(n) * n * 10;
          const RunResult result = run(process, state, rng, options);
          EXPECT_TRUE(result.completed);
          return static_cast<double>(result.steps);
        },
        {.master_seed = 104});
    const Summary summary = Summary::of(steps);
    ns.push_back(static_cast<double>(n));
    times.push_back(summary.mean());
    // T = o(n^2): at these sizes already well below n^2.
    EXPECT_LT(summary.mean(), 0.5 * static_cast<double>(n) * n);
  }
  const LinearFit fit = fit_loglog(ns, times);
  EXPECT_LT(fit.slope, 1.9);
  EXPECT_GT(fit.slope, 0.5);
}

// The counterexample: on the path with blocked opinions {0,1,2}, extreme
// opinions win with constant probability (lambda * k = Omega(1)).
TEST(Integration, PathCounterexampleBeatsTheAverage) {
  const VertexId n = 30;
  const Graph g = make_path(n);
  constexpr int kReplicas = 600;
  const auto winners = run_replicas<Opinion>(
      kReplicas,
      [&g, n](std::size_t, Rng& rng) {
        // Blocks 0..0 1..1 2..2 of equal size: average exactly 1.
        OpinionState state(g, block_opinions(n, 0, {10, 10, 10}));
        DivProcess process(g, SelectionScheme::kEdge);
        RunOptions options;
        options.max_steps = 50'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-99);
      },
      {.master_seed = 105});
  IntCounter counter;
  for (const Opinion w : winners) {
    counter.add(w);
  }
  // All replicas converge, and the extremes win with constant probability.
  EXPECT_EQ(counter.count(-99), 0u);
  const double extreme_fraction = counter.fraction(0) + counter.fraction(2);
  EXPECT_GT(extreme_fraction, 0.1);
}

// Lemma 10: extreme-mass product decays at a per-step factor consistent with
// (1 - 1/2n) while at least four opinions remain (vertex process).
TEST(Integration, Lemma10DecayRateOnCompleteGraph) {
  const VertexId n = 200;
  const Graph g = make_complete(n);
  constexpr int kReplicas = 60;
  constexpr std::uint64_t kSteps = 4000;
  constexpr std::uint64_t kStride = 200;
  // Average log(product) trajectories over replicas.
  // Lemma 10 tracks the masses of the ORIGINAL extreme opinions s = 1 and
  // l = 8 (not the current active extremes, which jump upward when an
  // extreme dies).
  const auto trajectories = run_replicas<std::vector<double>>(
      kReplicas,
      [&g, n](std::size_t, Rng& rng) {
        OpinionState state(g, ramp_opinions(n, 1, 8));
        DivProcess process(g, SelectionScheme::kVertex);
        std::vector<double> values;
        for (std::uint64_t step = 0; step <= kSteps; ++step) {
          if (step % kStride == 0) {
            values.push_back(state.pi_mass(1) * state.pi_mass(8));
          }
          process.step(state, rng);
        }
        return values;
      },
      {.master_seed = 106});
  std::vector<double> xs;
  std::vector<double> ys;
  for (std::size_t i = 0; i <= kSteps / kStride; ++i) {
    Summary s;
    for (const auto& trajectory : trajectories) {
      s.add(trajectory[i]);
    }
    if (s.mean() <= 0.0) {
      break;  // all replicas have eliminated an extreme
    }
    xs.push_back(static_cast<double>(i * kStride));
    ys.push_back(s.mean());
  }
  ASSERT_GE(xs.size(), 3u);
  const LinearFit fit = fit_exponential(xs, ys);
  const double measured_factor = std::exp(fit.slope);
  const double predicted = theory::lemma10_decay_factor_four_plus(n);
  // The lemma gives an upper bound on the per-step factor; the measured
  // factor must decay at least that fast (up to noise).
  EXPECT_LT(measured_factor, 1.0);
  EXPECT_LT(measured_factor, predicted + 0.0005);
}

// Azuma (eq. 5): the weight deviation tail is dominated by the bound.
TEST(Integration, AzumaTailBoundHolds) {
  const VertexId n = 100;
  const Graph g = make_complete(n);
  constexpr int kReplicas = 1000;
  constexpr std::uint64_t kSteps = 2000;
  const auto deviations = run_replicas<double>(
      kReplicas,
      [&g, n](std::size_t, Rng& rng) {
        OpinionState state(g, uniform_random_opinions(n, 1, 9, rng));
        const double initial = static_cast<double>(state.sum());
        DivProcess process(g, SelectionScheme::kEdge);
        for (std::uint64_t step = 0; step < kSteps; ++step) {
          process.step(state, rng);
        }
        return std::abs(static_cast<double>(state.sum()) - initial);
      },
      {.master_seed = 107});
  for (const double h : {50.0, 100.0, 150.0}) {
    const double bound = theory::azuma_tail_bound(h, static_cast<double>(kSteps));
    int exceed = 0;
    for (const double d : deviations) {
      exceed += d >= h ? 1 : 0;
    }
    const double empirical = static_cast<double>(exceed) / kReplicas;
    EXPECT_LE(empirical, bound * 1.2 + 0.01) << "h = " << h;
  }
}

// Remark 1 / eq. (3) interplay on regular graphs: both processes give the
// same answer on a regular expander.
TEST(Integration, EdgeAndVertexProcessesAgreeOnRegularGraphs) {
  const Graph g = make_complete(128);  // regular with lambda = 1/127
  const VertexId n = g.num_vertices();
  constexpr int kReplicas = 400;
  for (const auto scheme : {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    const auto winners = run_replicas<Opinion>(
        kReplicas,
        [&g, n, scheme](std::size_t, Rng& rng) {
          OpinionState state(
              g, opinions_with_sum(n, 1, 5, static_cast<std::int64_t>(n) * 3, rng));
          DivProcess process(g, scheme);
          RunOptions options;
          options.max_steps = 50'000'000;
          const RunResult result = run(process, state, rng, options);
          return result.winner.value_or(-99);
        },
        {.master_seed = 108});
    IntCounter counter;
    for (const Opinion w : winners) {
      counter.add(w);
    }
    // Integer average 3: both schemes must pick 3 most of the time (the
    // shortfall is the finite-n weight drift before reduction) and must land
    // on its immediate neighborhood essentially always.
    EXPECT_GT(counter.fraction(3), 0.75) << "scheme " << to_string(scheme);
    EXPECT_GT(counter.fraction(2) + counter.fraction(3) + counter.fraction(4),
              0.995)
        << "scheme " << to_string(scheme);
  }
}

// Sanity: spectral conditions distinguish the two regimes used above.
TEST(Integration, SpectralConditionsSeparateRegimes) {
  const Graph expander = make_complete(128);
  EXPECT_TRUE(check_theorem_conditions(expander, 5).applicable);
  const Graph path = make_path(128);
  EXPECT_FALSE(check_theorem_conditions(path, 3).applicable);
}

}  // namespace
}  // namespace divlib
