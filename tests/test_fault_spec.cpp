#include "cli/fault_spec.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "rng/rng.hpp"

namespace divlib {
namespace {

TEST(FaultSpec, EmptySpecHasNoFaults) {
  const FaultSpec spec = parse_fault_spec("");
  EXPECT_FALSE(spec.any());
  EXPECT_EQ(spec.drop, 0.0);
  EXPECT_TRUE(spec.crash_waves.empty());
}

TEST(FaultSpec, ParsesFullGrammar) {
  const FaultSpec spec = parse_fault_spec(
      "drop=0.3,crash=0.05@[0,1e6],byzantine=0.02,corrupt=0.01,seed=9");
  EXPECT_TRUE(spec.any());
  EXPECT_DOUBLE_EQ(spec.drop, 0.3);
  EXPECT_DOUBLE_EQ(spec.corrupt, 0.01);
  ASSERT_EQ(spec.crash_waves.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.crash_waves[0].fraction, 0.05);
  EXPECT_EQ(spec.crash_waves[0].start, 0u);
  EXPECT_EQ(spec.crash_waves[0].end, 1'000'000u);
  EXPECT_DOUBLE_EQ(spec.byzantine_fraction, 0.02);
  EXPECT_FALSE(spec.byzantine_lie.has_value());  // randomized lies
  ASSERT_TRUE(spec.seed.has_value());
  EXPECT_EQ(*spec.seed, 9u);
}

TEST(FaultSpec, CrashWithoutWindowIsPermanent) {
  const FaultSpec spec = parse_fault_spec("crash=0.1");
  ASSERT_EQ(spec.crash_waves.size(), 1u);
  EXPECT_EQ(spec.crash_waves[0].start, 0u);
  EXPECT_EQ(spec.crash_waves[0].end, kNoRecovery);
}

TEST(FaultSpec, RepeatedCrashClausesMakeWaves) {
  const FaultSpec spec =
      parse_fault_spec("crash=0.1@[0,100],crash=0.2@[500,1000]");
  ASSERT_EQ(spec.crash_waves.size(), 2u);
  EXPECT_EQ(spec.crash_waves[1].start, 500u);
  EXPECT_EQ(spec.crash_waves[1].end, 1000u);
}

TEST(FaultSpec, ByzantineFixedLie) {
  const FaultSpec spec = parse_fault_spec("byzantine=0.1:3");
  EXPECT_DOUBLE_EQ(spec.byzantine_fraction, 0.1);
  ASSERT_TRUE(spec.byzantine_lie.has_value());
  EXPECT_EQ(*spec.byzantine_lie, 3);
}

TEST(FaultSpec, RejectsMalformedInput) {
  EXPECT_THROW(parse_fault_spec("nonsense=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=abc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=0.5x"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("corrupt=1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash=0.1@(0,5)"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash=0.1@[5]"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("crash=0.1@[9,9]"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("byzantine=0.1:zebra"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("seed=zebra"), std::invalid_argument);
  // Fault fractions cannot cover more than the whole graph.
  EXPECT_THROW(parse_fault_spec("crash=0.7,byzantine=0.6"),
               std::invalid_argument);
}

TEST(FaultSpec, MaterializeDrawsDisjointSets) {
  const FaultSpec spec =
      parse_fault_spec("crash=0.05@[0,1000],crash=0.1,byzantine=0.02");
  Rng rng(17);
  const FaultPlan plan = materialize_fault_plan(spec, 200, 99, rng);
  EXPECT_EQ(plan.byzantine().size(), 4u);   // 0.02 * 200
  EXPECT_EQ(plan.crashes().size(), 30u);    // (0.05 + 0.1) * 200
  EXPECT_EQ(plan.seed(), 99u);
  std::set<VertexId> seen;
  for (const ByzantineSpec& byz : plan.byzantine()) {
    EXPECT_TRUE(seen.insert(byz.vertex).second);
  }
  for (const CrashEpisode& episode : plan.crashes()) {
    EXPECT_TRUE(seen.insert(episode.vertex).second);
    EXPECT_LT(episode.vertex, 200u);
  }
  std::size_t churn = 0;
  for (const CrashEpisode& episode : plan.crashes()) {
    churn += episode.end == 1000u ? 1 : 0;
  }
  EXPECT_EQ(churn, 10u);  // the first wave recovers at step 1000
}

TEST(FaultSpec, MaterializeHonorsSeedOverride) {
  Rng rng_a(1);
  Rng rng_b(1);
  const FaultPlan with_override =
      materialize_fault_plan(parse_fault_spec("drop=0.1,seed=5"), 50, 99, rng_a);
  const FaultPlan without =
      materialize_fault_plan(parse_fault_spec("drop=0.1"), 50, 99, rng_b);
  EXPECT_EQ(with_override.seed(), 5u);
  EXPECT_EQ(without.seed(), 99u);
}

TEST(FaultSpec, MaterializeIsDeterministicInRng) {
  const FaultSpec spec = parse_fault_spec("byzantine=0.1");
  Rng rng_a(7);
  Rng rng_b(7);
  const FaultPlan a = materialize_fault_plan(spec, 100, 0, rng_a);
  const FaultPlan b = materialize_fault_plan(spec, 100, 0, rng_b);
  ASSERT_EQ(a.byzantine().size(), b.byzantine().size());
  for (std::size_t i = 0; i < a.byzantine().size(); ++i) {
    EXPECT_EQ(a.byzantine()[i].vertex, b.byzantine()[i].vertex);
  }
}

}  // namespace
}  // namespace divlib
