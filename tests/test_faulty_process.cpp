#include "core/faulty_process.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/div_process.hpp"
#include "core/load_balancing.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

std::unique_ptr<Process> make_div(const Graph& g) {
  return std::make_unique<DivProcess>(g, SelectionScheme::kEdge);
}

TEST(FaultyProcess, ValidatesConstruction) {
  const Graph g = make_complete(4);
  EXPECT_THROW(FaultyProcess(nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(FaultyProcess(make_div(g), -0.1), std::invalid_argument);
  EXPECT_THROW(FaultyProcess(make_div(g), 1.0), std::invalid_argument);
  FaultPlan overlapping;
  overlapping.crash(0, 0, 100).crash(0, 50, 150);
  EXPECT_THROW(FaultyProcess(make_div(g), std::move(overlapping)),
               std::invalid_argument);
}

TEST(FaultyProcess, NameWrapsInner) {
  const Graph g = make_complete(4);
  const FaultyProcess faulty(make_div(g), 0.2);
  EXPECT_EQ(faulty.name(), "faulty(div/edge)");
}

TEST(FaultyProcess, ZeroDropRateMatchesInnerExactly) {
  const Graph g = make_complete(8);
  Rng init(1);
  const auto initial = uniform_random_opinions(8, 1, 5, init);
  OpinionState plain_state(g, initial);
  OpinionState faulty_state(g, initial);
  DivProcess plain(g, SelectionScheme::kEdge);
  FaultyProcess faulty(make_div(g), 0.0);
  Rng rng_a(7);
  Rng rng_b(7);
  for (int step = 0; step < 2000; ++step) {
    plain.step(plain_state, rng_a);
    faulty.step(faulty_state, rng_b);
  }
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(plain_state.opinion(v), faulty_state.opinion(v));
  }
  EXPECT_EQ(faulty.dropped(), 0u);
}

TEST(FaultyProcess, DropRateCountsDrops) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 1, 1, 5, 5, 5, 5});
  FaultyProcess faulty(make_div(g), 0.5);
  Rng rng(3);
  constexpr int kSteps = 20000;
  for (int step = 0; step < kSteps; ++step) {
    faulty.step(state, rng);
  }
  EXPECT_NEAR(static_cast<double>(faulty.dropped()) / kSteps, 0.5, 0.02);
}

// Satellite: message loss only thins the schedule.  Because fault coins come
// from the plan's private stream, the inner process replays the fault-free
// run's interaction sequence EXACTLY: the final opinion vector is
// bit-identical, and only the step count stretches by ~1/(1 - drop_rate).
TEST(FaultyProcess, DropPreservesJumpChainExactly) {
  const Graph g = make_complete(24);
  Rng init(11);
  const auto initial = uniform_random_opinions(24, 1, 5, init);
  RunOptions options;
  options.max_steps = 50'000'000;

  OpinionState clean_state(g, initial);
  DivProcess clean(g, SelectionScheme::kEdge);
  Rng clean_rng(1234);
  const RunResult clean_result = run(clean, clean_state, clean_rng, options);
  ASSERT_TRUE(clean_result.completed);

  const double drop_rate = 0.4;
  OpinionState faulty_state(g, initial);
  FaultPlan plan;
  plan.drop(drop_rate).fault_seed(77);
  FaultyProcess faulty(make_div(g), std::move(plan));
  Rng faulty_rng(1234);  // same main stream as the clean run
  const RunResult faulty_result = run(faulty, faulty_state, faulty_rng, options);
  ASSERT_TRUE(faulty_result.completed);

  for (VertexId v = 0; v < 24; ++v) {
    EXPECT_EQ(clean_state.opinion(v), faulty_state.opinion(v));
  }
  EXPECT_EQ(faulty_result.winner, clean_result.winner);
  // Accepted interactions are identical, so executed = accepted + dropped.
  EXPECT_EQ(faulty_result.steps, clean_result.steps + faulty.dropped());
  const double stretch = static_cast<double>(faulty_result.steps) /
                         static_cast<double>(clean_result.steps);
  EXPECT_NEAR(stretch, 1.0 / (1.0 - drop_rate), 0.15);
}

TEST(FaultyProcess, MessageLossPreservesWinnerDistribution) {
  // The jump chain is unchanged: P(winner) identical, time stretched.
  const Graph g = make_complete(40);
  constexpr int kReplicas = 800;
  const auto measure = [&](double drop_rate, std::uint64_t salt) {
    IntCounter winners;
    Summary steps;
    const auto results = run_replicas<RunResult>(
        kReplicas,
        [&g, drop_rate, salt](std::size_t replica, Rng& rng) {
          OpinionState state(g, opinions_with_sum(40, 1, 4, 100, rng));  // c=2.5
          FaultPlan plan;
          plan.drop(drop_rate).fault_seed(Rng::substream_seed(salt, replica));
          FaultyProcess faulty(
              std::make_unique<DivProcess>(g, SelectionScheme::kEdge),
              std::move(plan));
          RunOptions options;
          options.max_steps = 50'000'000;
          return run(faulty, state, rng, options);
        },
        {.master_seed = salt});
    for (const RunResult& result : results) {
      winners.add(result.winner.value_or(-1));
      steps.add(static_cast<double>(result.steps));
    }
    return std::pair{winners.fraction(2) + winners.fraction(3), steps.mean()};
  };
  const auto [clean_target, clean_time] = measure(0.0, 61);
  const auto [lossy_target, lossy_time] = measure(0.5, 62);
  EXPECT_NEAR(clean_target, lossy_target, 0.03);
  // Time stretches by 1/(1 - 0.5) = 2.
  EXPECT_NEAR(lossy_time / clean_time, 2.0, 0.25);
}

TEST(FaultyProcess, CrashedVerticesNeverChange) {
  const Graph g = make_complete(10);
  Rng init(5);
  auto initial = uniform_random_opinions(10, 1, 9, init);
  initial[3] = 7;
  initial[6] = 2;
  OpinionState state(g, initial);
  FaultyProcess faulty(make_div(g), 0.0, {3, 6});
  Rng rng(6);
  for (int step = 0; step < 20000; ++step) {
    faulty.step(state, rng);
    ASSERT_EQ(state.opinion(3), 7);
    ASSERT_EQ(state.opinion(6), 2);
  }
  EXPECT_GT(faulty.rollbacks(), 0u);
}

TEST(FaultyProcess, CrashedVertexOutOfRangeThrows) {
  const Graph g = make_complete(4);
  OpinionState state(g, {1, 2, 3, 4});
  FaultyProcess faulty(make_div(g), 0.0, {9});
  Rng rng(7);
  EXPECT_THROW(faulty.step(state, rng), std::invalid_argument);
}

TEST(FaultyProcess, WorksWithTwoWriterInnerProcess) {
  const Graph g = make_complete(6);
  OpinionState state(g, {1, 9, 5, 5, 5, 5});
  FaultyProcess faulty(std::make_unique<LoadBalancing>(g), 0.0, {0});
  Rng rng(8);
  for (int step = 0; step < 5000; ++step) {
    faulty.step(state, rng);
    ASSERT_EQ(state.opinion(0), 1);  // pinned despite pairwise writes
  }
}

TEST(FaultyProcess, DivergentOpinionsOfCrashedVerticesPreventConsensus) {
  // Two crashed vertices with different opinions: the network can never
  // fully agree -- a designed negative control.
  const Graph g = make_complete(8);
  std::vector<Opinion> initial(8, 3);
  initial[0] = 1;
  initial[1] = 5;
  OpinionState state(g, initial);
  FaultyProcess faulty(make_div(g), 0.0, {0, 1});
  Rng rng(9);
  RunOptions options;
  options.max_steps = 100'000;
  const RunResult result = run(faulty, state, rng, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.status, RunStatus::kCapped);
}

// Churn: a vertex crashes at step 0 and recovers at step 64.  While down it
// is pinned to its crash-time opinion; afterwards it rejoins the dynamics.
// The window is short and the honest opinions far away, so the network
// cannot fully absorb into the crashed value before the recovery fires.
TEST(FaultyProcess, ScheduledCrashRecoversOnTime) {
  const Graph g = make_complete(8);
  std::vector<Opinion> initial(8, 9);
  initial[0] = 1;
  OpinionState state(g, initial);
  FaultPlan plan;
  plan.crash(0, 0, 64).fault_seed(21);
  FaultyProcess faulty(make_div(g), std::move(plan));
  Rng rng(22);
  for (int step = 0; step < 64; ++step) {
    faulty.step(state, rng);
    ASSERT_EQ(state.opinion(0), 1) << "pinned while crashed, step " << step;
  }
  EXPECT_EQ(faulty.recoveries(), 0u);
  bool changed = false;
  for (int step = 0; step < 100'000 && !changed; ++step) {
    faulty.step(state, rng);
    changed = state.opinion(0) != 1;
  }
  EXPECT_TRUE(changed) << "vertex 0 should rejoin the dynamics after recovery";
  EXPECT_EQ(faulty.recoveries(), 1u);
}

// A Byzantine liar: vertex 0 keeps its true opinion 5 forever but answers
// every pull with the lie 1.  On a path 0-1-2 the honest suffix is dragged
// to the lie and stays there; the liar's true opinion is never altered.
TEST(FaultyProcess, ByzantineFixedLieMisleadsNeighbors) {
  const Graph g = make_path(3);
  OpinionState state(g, {5, 3, 1});
  FaultPlan plan;
  plan.byzantine_fixed(0, 1).fault_seed(31);
  FaultyProcess faulty(make_div(g), std::move(plan));
  Rng rng(32);
  for (int step = 0; step < 20000; ++step) {
    faulty.step(state, rng);
    ASSERT_EQ(state.opinion(0), 5) << "Byzantine true opinion must not drift";
  }
  EXPECT_EQ(state.opinion(1), 1);
  EXPECT_EQ(state.opinion(2), 1);
}

TEST(FaultyProcess, RandomLiesAndCorruptionStayInRange) {
  const Graph g = make_complete(12);
  Rng init(41);
  OpinionState state(g, uniform_random_opinions(12, 1, 6, init));
  FaultPlan plan;
  plan.byzantine_random(2).byzantine_random(7).corrupt(0.5).fault_seed(42);
  FaultyProcess faulty(make_div(g), std::move(plan));
  Rng rng(43);
  for (int step = 0; step < 20000; ++step) {
    faulty.step(state, rng);
    for (VertexId v = 0; v < 12; ++v) {
      ASSERT_GE(state.opinion(v), state.range_lo());
      ASSERT_LE(state.opinion(v), state.range_hi());
    }
  }
  EXPECT_GT(faulty.corruptions(), 0u);
}

// Satellite regression: one FaultyProcess instance serving two sequential
// runs must pin crashed vertices to the SECOND run's opinions, not roll them
// back to stale values captured during the first run.
TEST(FaultyProcess, SequentialRunsRecaptureFrozenOpinions) {
  const Graph g = make_complete(8);
  FaultyProcess faulty(make_div(g), 0.0, {0});
  RunOptions options;
  options.max_steps = 20'000;

  std::vector<Opinion> first(8, 3);
  first[0] = 2;
  OpinionState first_state(g, first);
  Rng rng(51);
  (void)run(faulty, first_state, rng, options);
  EXPECT_EQ(first_state.opinion(0), 2);

  std::vector<Opinion> second(8, 1);
  second[0] = 4;
  OpinionState second_state(g, second);
  (void)run(faulty, second_state, rng, options);
  EXPECT_EQ(second_state.opinion(0), 4)
      << "stale frozen opinion from the previous run leaked into this run";
}

TEST(FaultyProcess, CountersAreCumulativeAcrossRuns) {
  const Graph g = make_complete(8);
  FaultyProcess faulty(make_div(g), 0.5, {0});
  RunOptions options;
  options.max_steps = 2'000;
  options.stop = StopKind::kConsensus;
  Rng rng(61);
  Rng init(62);
  OpinionState a(g, uniform_random_opinions(8, 1, 5, init));
  (void)run(faulty, a, rng, options);
  const std::uint64_t dropped_after_first = faulty.dropped();
  EXPECT_GT(dropped_after_first, 0u);
  OpinionState b(g, uniform_random_opinions(8, 1, 5, init));
  (void)run(faulty, b, rng, options);
  EXPECT_GT(faulty.dropped(), dropped_after_first);
}

}  // namespace
}  // namespace divlib
