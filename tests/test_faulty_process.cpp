#include "core/faulty_process.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/div_process.hpp"
#include "core/load_balancing.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

namespace divlib {
namespace {

std::unique_ptr<Process> make_div(const Graph& g) {
  return std::make_unique<DivProcess>(g, SelectionScheme::kEdge);
}

TEST(FaultyProcess, ValidatesConstruction) {
  const Graph g = make_complete(4);
  EXPECT_THROW(FaultyProcess(nullptr, 0.1), std::invalid_argument);
  EXPECT_THROW(FaultyProcess(make_div(g), -0.1), std::invalid_argument);
  EXPECT_THROW(FaultyProcess(make_div(g), 1.0), std::invalid_argument);
}

TEST(FaultyProcess, NameWrapsInner) {
  const Graph g = make_complete(4);
  const FaultyProcess faulty(make_div(g), 0.2);
  EXPECT_EQ(faulty.name(), "faulty(div/edge)");
}

TEST(FaultyProcess, ZeroDropRateMatchesInnerExactly) {
  const Graph g = make_complete(8);
  Rng init(1);
  const auto initial = uniform_random_opinions(8, 1, 5, init);
  OpinionState plain_state(g, initial);
  OpinionState faulty_state(g, initial);
  DivProcess plain(g, SelectionScheme::kEdge);
  FaultyProcess faulty(make_div(g), 0.0);
  Rng rng_a(7);
  Rng rng_b(7);
  for (int step = 0; step < 2000; ++step) {
    plain.step(plain_state, rng_a);
    faulty.step(faulty_state, rng_b);
  }
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(plain_state.opinion(v), faulty_state.opinion(v));
  }
  EXPECT_EQ(faulty.dropped_steps(), 0u);
}

TEST(FaultyProcess, DropRateCountsDrops) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 1, 1, 5, 5, 5, 5});
  FaultyProcess faulty(make_div(g), 0.5);
  Rng rng(3);
  constexpr int kSteps = 20000;
  for (int step = 0; step < kSteps; ++step) {
    faulty.step(state, rng);
  }
  EXPECT_NEAR(static_cast<double>(faulty.dropped_steps()) / kSteps, 0.5, 0.02);
}

TEST(FaultyProcess, MessageLossPreservesWinnerDistribution) {
  // The jump chain is unchanged: P(winner) identical, time stretched.
  const Graph g = make_complete(40);
  constexpr int kReplicas = 800;
  const auto measure = [&](double drop_rate, std::uint64_t salt) {
    IntCounter winners;
    Summary steps;
    const auto results = run_replicas<RunResult>(
        kReplicas,
        [&g, drop_rate](std::size_t, Rng& rng) {
          OpinionState state(g, opinions_with_sum(40, 1, 4, 100, rng));  // c=2.5
          FaultyProcess faulty(
              std::make_unique<DivProcess>(g, SelectionScheme::kEdge), drop_rate);
          RunOptions options;
          options.max_steps = 50'000'000;
          return run(faulty, state, rng, options);
        },
        {.master_seed = salt});
    for (const RunResult& result : results) {
      winners.add(result.winner.value_or(-1));
      steps.add(static_cast<double>(result.steps));
    }
    return std::pair{winners.fraction(2) + winners.fraction(3), steps.mean()};
  };
  const auto [clean_target, clean_time] = measure(0.0, 61);
  const auto [lossy_target, lossy_time] = measure(0.5, 62);
  EXPECT_NEAR(clean_target, lossy_target, 0.03);
  // Time stretches by 1/(1 - 0.5) = 2.
  EXPECT_NEAR(lossy_time / clean_time, 2.0, 0.25);
}

TEST(FaultyProcess, CrashedVerticesNeverChange) {
  const Graph g = make_complete(10);
  Rng init(5);
  auto initial = uniform_random_opinions(10, 1, 9, init);
  initial[3] = 7;
  initial[6] = 2;
  OpinionState state(g, initial);
  FaultyProcess faulty(make_div(g), 0.0, {3, 6});
  Rng rng(6);
  for (int step = 0; step < 20000; ++step) {
    faulty.step(state, rng);
    ASSERT_EQ(state.opinion(3), 7);
    ASSERT_EQ(state.opinion(6), 2);
  }
  EXPECT_GT(faulty.crashed_rollbacks(), 0u);
}

TEST(FaultyProcess, CrashedVertexOutOfRangeThrows) {
  const Graph g = make_complete(4);
  OpinionState state(g, {1, 2, 3, 4});
  FaultyProcess faulty(make_div(g), 0.0, {9});
  Rng rng(7);
  EXPECT_THROW(faulty.step(state, rng), std::invalid_argument);
}

TEST(FaultyProcess, WorksWithTwoWriterInnerProcess) {
  const Graph g = make_complete(6);
  OpinionState state(g, {1, 9, 5, 5, 5, 5});
  FaultyProcess faulty(std::make_unique<LoadBalancing>(g), 0.0, {0});
  Rng rng(8);
  for (int step = 0; step < 5000; ++step) {
    faulty.step(state, rng);
    ASSERT_EQ(state.opinion(0), 1);  // pinned despite pairwise writes
  }
}

TEST(FaultyProcess, DivergentOpinionsOfCrashedVerticesPreventConsensus) {
  // Two crashed vertices with different opinions: the network can never
  // fully agree -- a designed negative control.
  const Graph g = make_complete(8);
  std::vector<Opinion> initial(8, 3);
  initial[0] = 1;
  initial[1] = 5;
  OpinionState state(g, initial);
  FaultyProcess faulty(make_div(g), 0.0, {0, 1});
  Rng rng(9);
  RunOptions options;
  options.max_steps = 100'000;
  const RunResult result = run(faulty, state, rng, options);
  EXPECT_FALSE(result.completed);
}

}  // namespace
}  // namespace divlib
