// The adaptive supervision control plane: completion-time estimator
// (exact nearest-rank quantiles, confidence gate, adaptive deadline),
// persistent calibration, the backpressure circuit breaker, supervision
// journal records, and the thread-mode supervisor integration of all three.
#include "engine/adaptive/breaker.hpp"
#include "engine/adaptive/calibration.hpp"
#include "engine/adaptive/estimator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "engine/campaign.hpp"
#include "engine/supervisor.hpp"
#include "io/journal.hpp"
#include "rng/rng.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using Clock = CircuitBreaker::Clock;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// ---------------------------------------------------------------------------
// CompletionEstimator

TEST(EstimatorTest, ColdEstimatorKeepsFallbackDeadline) {
  CompletionEstimator estimator;
  EXPECT_EQ(estimator.samples(), 0u);
  EXPECT_FALSE(estimator.confident());
  EXPECT_EQ(estimator.quantile_seconds(), 0.0);
  EXPECT_EQ(estimator.deadline(0ms), 0ms);
  EXPECT_EQ(estimator.deadline(1234ms), 1234ms);
}

TEST(EstimatorTest, ConfidenceGateOpensAtMinSamples) {
  EstimatorOptions options;
  options.min_samples = 4;
  CompletionEstimator estimator(options);
  for (int i = 0; i < 3; ++i) {
    estimator.observe(1.0);
    EXPECT_FALSE(estimator.confident()) << i;
  }
  estimator.observe(1.0);
  EXPECT_TRUE(estimator.confident());
}

TEST(EstimatorTest, DeadlineIsQuantileTimesSafety) {
  EstimatorOptions options;
  options.quantile = 0.5;
  options.safety_factor = 3.0;
  options.min_samples = 4;
  CompletionEstimator estimator(options);
  for (const double s : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    estimator.observe(s);
  }
  // Nearest-rank median of {1..5} is 3.0; deadline = 3.0 * 3 = 9000ms.
  EXPECT_DOUBLE_EQ(estimator.quantile_seconds(), 3.0);
  EXPECT_EQ(estimator.deadline(50ms), 9000ms);
}

TEST(EstimatorTest, AdaptedDeadlineNeverReadsAsDisabled) {
  // A sub-millisecond learned quantile must floor at 1ms: a 0ms deadline
  // means "no deadline" to the supervisor.
  EstimatorOptions options;
  options.min_samples = 1;
  CompletionEstimator estimator(options);
  estimator.observe(1e-7);
  EXPECT_EQ(estimator.deadline(0ms), 1ms);
}

TEST(EstimatorTest, RejectsNonPositiveAndNonFiniteSamples) {
  EstimatorOptions options;
  options.min_samples = 1;
  CompletionEstimator estimator(options);
  estimator.observe(0.0);
  estimator.observe(-1.0);
  estimator.observe(std::numeric_limits<double>::quiet_NaN());
  estimator.observe(std::numeric_limits<double>::infinity());
  EXPECT_EQ(estimator.samples(), 0u);
  EXPECT_FALSE(estimator.confident());
}

TEST(EstimatorTest, WindowEvictsOldestObservation) {
  EstimatorOptions options;
  options.window = 3;
  options.quantile = 1.0;
  options.min_samples = 1;
  CompletionEstimator estimator(options);
  estimator.observe(100.0);  // evicted once 3 newer samples land
  estimator.observe(1.0);
  estimator.observe(2.0);
  estimator.observe(3.0);
  EXPECT_EQ(estimator.samples(), 4u);  // lifetime count keeps the gate open
  EXPECT_DOUBLE_EQ(estimator.quantile(1.0), 3.0);
  EXPECT_DOUBLE_EQ(estimator.quantile(0.0), 1.0);
}

TEST(EstimatorTest, ObserverSeesAcceptedSamplesOnly) {
  EstimatorOptions options;
  options.min_samples = 1;
  CompletionEstimator estimator(options);
  std::vector<double> seen;
  estimator.set_observer([&](double s) { seen.push_back(s); });
  estimator.observe(0.25);
  estimator.observe(-3.0);  // dropped: never reaches the observer
  estimator.observe(0.75);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_DOUBLE_EQ(seen[0], 0.25);
  EXPECT_DOUBLE_EQ(seen[1], 0.75);
}

TEST(EstimatorTest, StepRateIsAnEwma) {
  EstimatorOptions options;
  options.rate_alpha = 0.5;
  CompletionEstimator estimator(options);
  EXPECT_EQ(estimator.step_rate(), 0.0);
  estimator.observe_rate(100.0);
  EXPECT_DOUBLE_EQ(estimator.step_rate(), 100.0);  // first sample seeds
  estimator.observe_rate(200.0);
  EXPECT_DOUBLE_EQ(estimator.step_rate(), 150.0);
}

// Property: quantiles are bounded by the observed min/max at every q.
TEST(EstimatorPropertyTest, QuantilesBoundedByObservedRange) {
  Rng rng(0xada9u);
  for (int round = 0; round < 50; ++round) {
    EstimatorOptions options;
    options.min_samples = 1;
    CompletionEstimator estimator(options);
    double lo = std::numeric_limits<double>::infinity();
    double hi = 0.0;
    const int n = 1 + static_cast<int>(rng.uniform_below(40));
    for (int i = 0; i < n; ++i) {
      const double sample = 1e-3 + 10.0 * rng.uniform01();
      lo = std::min(lo, sample);
      hi = std::max(hi, sample);
      estimator.observe(sample);
    }
    for (double q = 0.0; q <= 1.0; q += 0.1) {
      const double value = estimator.quantile(q);
      EXPECT_GE(value, lo) << "round " << round << " q " << q;
      EXPECT_LE(value, hi) << "round " << round << " q " << q;
    }
    const EstimatorSnapshot snap = estimator.stats();
    EXPECT_DOUBLE_EQ(snap.min_seconds, lo);
    EXPECT_DOUBLE_EQ(snap.max_seconds, hi);
  }
}

// Property: pointwise-dominating sample sets give dominating quantiles --
// nudging any subset of the samples upward can never LOWER an estimate.
TEST(EstimatorPropertyTest, QuantilesMonotoneInSampleSet) {
  Rng rng(0xada10u);
  for (int round = 0; round < 50; ++round) {
    EstimatorOptions options;
    options.min_samples = 1;
    CompletionEstimator lower(options);
    CompletionEstimator upper(options);
    const int n = 1 + static_cast<int>(rng.uniform_below(40));
    for (int i = 0; i < n; ++i) {
      const double sample = 1e-3 + 5.0 * rng.uniform01();
      const double bump = rng.uniform01() < 0.5 ? 0.0 : rng.uniform01();
      lower.observe(sample);
      upper.observe(sample + bump);
    }
    for (double q = 0.0; q <= 1.0; q += 0.05) {
      EXPECT_LE(lower.quantile(q), upper.quantile(q))
          << "round " << round << " q " << q;
    }
    EXPECT_LE(lower.deadline(0ms), upper.deadline(0ms)) << "round " << round;
  }
}

// Property: a fixed insertion order reproduces identical estimates -- the
// estimator is deterministic state, not a sketch.
TEST(EstimatorPropertyTest, DeterministicForFixedInsertionOrder) {
  Rng sample_rng(0xada11u);
  std::vector<double> samples;
  for (int i = 0; i < 200; ++i) {
    samples.push_back(1e-3 + sample_rng.uniform01());
  }
  EstimatorOptions options;
  options.window = 64;  // exercise eviction too
  options.min_samples = 8;
  CompletionEstimator a(options);
  CompletionEstimator b(options);
  for (const double s : samples) {
    a.observe(s);
    b.observe(s);
  }
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_DOUBLE_EQ(a.quantile(q), b.quantile(q)) << q;
  }
  EXPECT_EQ(a.deadline(5ms), b.deadline(5ms));
  EXPECT_EQ(a.samples(), b.samples());
}

// ---------------------------------------------------------------------------
// CalibrationLog

TEST(CalibrationTest, RoundTripsObservationsAcrossReopen) {
  const fs::path dir = fresh_dir("div_calibration_roundtrip");
  constexpr std::uint32_t kFingerprint = 0xfeedf00du;
  {
    CalibrationLog log(dir.string(), kFingerprint);
    EXPECT_EQ(log.loaded(), 0u);
    log.append(0.5);
    log.append(1.5);
    log.append(2.5);
  }
  CalibrationLog reopened(dir.string(), kFingerprint);
  EXPECT_EQ(reopened.loaded(), 3u);
  EstimatorOptions options;
  options.min_samples = 3;
  options.quantile = 1.0;
  options.safety_factor = 1.0;
  CompletionEstimator estimator(options);
  EXPECT_EQ(reopened.warm(estimator), 3u);
  EXPECT_TRUE(estimator.confident());
  EXPECT_DOUBLE_EQ(estimator.quantile_seconds(), 2.5);
  fs::remove_all(dir);
}

TEST(CalibrationTest, FingerprintMismatchColdStartsTheLog) {
  const fs::path dir = fresh_dir("div_calibration_mismatch");
  {
    CalibrationLog log(dir.string(), 0x11111111u);
    log.append(1.0);
    log.append(2.0);
  }
  // A different configuration fingerprint discards the stale samples ...
  CalibrationLog other(dir.string(), 0x22222222u);
  EXPECT_EQ(other.loaded(), 0u);
  other.append(7.0);
  // ... and the restarted log is keyed to the NEW fingerprint.
  CalibrationLog reopened(dir.string(), 0x22222222u);
  EXPECT_EQ(reopened.loaded(), 1u);
  fs::remove_all(dir);
}

TEST(CalibrationTest, GarbageFileColdStartsTheLog) {
  const fs::path dir = fresh_dir("div_calibration_garbage");
  {
    std::ofstream out(dir / CalibrationLog::file_name(), std::ios::binary);
    out << "this is not a journal";
  }
  CalibrationLog log(dir.string(), 0xabcdef01u);
  EXPECT_EQ(log.loaded(), 0u);
  log.append(3.0);
  CalibrationLog reopened(dir.string(), 0xabcdef01u);
  EXPECT_EQ(reopened.loaded(), 1u);
  fs::remove_all(dir);
}

TEST(CalibrationTest, NonPositiveObservationsAreNotPersisted) {
  const fs::path dir = fresh_dir("div_calibration_invalid");
  {
    CalibrationLog log(dir.string(), 0x5a5a5a5au);
    log.append(0.0);
    log.append(-1.0);
    log.append(4.0);
  }
  CalibrationLog reopened(dir.string(), 0x5a5a5a5au);
  EXPECT_EQ(reopened.loaded(), 1u);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// CircuitBreaker

TEST(BreakerTest, StaysClosedBelowThreshold) {
  BreakerOptions options;
  options.failure_threshold = 3;
  const auto t0 = Clock::now();
  CircuitBreaker breaker(options, t0);
  EXPECT_TRUE(breaker.record_failure(t0 + 1ms).empty());
  EXPECT_TRUE(breaker.record_failure(t0 + 2ms).empty());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(breaker.backoff_multiplier(), 1.0);
  EXPECT_EQ(breaker.cap(8), 8u);
}

TEST(BreakerTest, OpensAtThresholdInsideWindow) {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.window = 100ms;
  options.backoff_multiplier = 4.0;
  options.width_fraction = 0.5;
  const auto t0 = Clock::now();
  CircuitBreaker breaker(options, t0);
  breaker.record_failure(t0 + 1ms);
  breaker.record_failure(t0 + 2ms);
  const auto transitions = breaker.record_failure(t0 + 3ms);
  ASSERT_EQ(transitions.size(), 1u);
  EXPECT_EQ(transitions[0].from, BreakerState::kClosed);
  EXPECT_EQ(transitions[0].to, BreakerState::kOpen);
  EXPECT_EQ(transitions[0].failures_in_window, 3u);
  EXPECT_DOUBLE_EQ(breaker.backoff_multiplier(), 4.0);
  EXPECT_EQ(breaker.cap(8), 4u);
  EXPECT_EQ(breaker.cap(1), 1u);  // the cap never stops progress entirely
}

TEST(BreakerTest, SlidingWindowForgetsOldFailures) {
  BreakerOptions options;
  options.failure_threshold = 3;
  options.window = 10ms;
  const auto t0 = Clock::now();
  CircuitBreaker breaker(options, t0);
  breaker.record_failure(t0 + 1ms);
  breaker.record_failure(t0 + 2ms);
  // 50ms later the first two failures have left the window.
  EXPECT_TRUE(breaker.record_failure(t0 + 52ms).empty());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.failures_in_window(), 1u);
}

TEST(BreakerTest, CooldownProbesHalfOpenThenClosesOnSuccess) {
  BreakerOptions options;
  options.failure_threshold = 2;
  options.window = 100ms;
  options.cooldown = 50ms;
  const auto t0 = Clock::now();
  CircuitBreaker breaker(options, t0);
  breaker.record_failure(t0 + 1ms);
  breaker.record_failure(t0 + 2ms);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.tick(t0 + 10ms).empty());  // cooldown still running
  const auto probe = breaker.tick(t0 + 60ms);
  ASSERT_EQ(probe.size(), 1u);
  EXPECT_EQ(probe[0].to, BreakerState::kHalfOpen);
  // HalfOpen probes at full speed and width.
  EXPECT_DOUBLE_EQ(breaker.backoff_multiplier(), 1.0);
  EXPECT_EQ(breaker.cap(8), 8u);
  const auto close = breaker.record_success(t0 + 61ms);
  ASSERT_EQ(close.size(), 1u);
  EXPECT_EQ(close[0].to, BreakerState::kClosed);
  // The close cleared the window: the next failure starts a fresh count.
  EXPECT_TRUE(breaker.record_failure(t0 + 62ms).empty());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, FailureWhileHalfOpenReopens) {
  BreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown = 20ms;
  const auto t0 = Clock::now();
  CircuitBreaker breaker(options, t0);
  breaker.record_failure(t0 + 1ms);
  breaker.record_failure(t0 + 2ms);
  breaker.tick(t0 + 30ms);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  const auto reopen = breaker.record_failure(t0 + 31ms);
  ASSERT_EQ(reopen.size(), 1u);
  EXPECT_EQ(reopen[0].from, BreakerState::kHalfOpen);
  EXPECT_EQ(reopen[0].to, BreakerState::kOpen);
}

TEST(BreakerTest, FailuresWhileOpenPushTheProbeOut) {
  BreakerOptions options;
  options.failure_threshold = 2;
  options.cooldown = 50ms;
  const auto t0 = Clock::now();
  CircuitBreaker breaker(options, t0);
  breaker.record_failure(t0 + 1ms);
  breaker.record_failure(t0 + 2ms);  // Open; probe at t0+52ms
  breaker.record_failure(t0 + 40ms);  // still failing: probe moves to t0+90ms
  EXPECT_TRUE(breaker.tick(t0 + 60ms).empty());
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.tick(t0 + 95ms).empty());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
}

TEST(BreakerTest, SuccessWhileClosedIsANoop) {
  const auto t0 = Clock::now();
  CircuitBreaker breaker(BreakerOptions{}, t0);
  EXPECT_TRUE(breaker.record_success(t0 + 1ms).empty());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(BreakerTest, StateNamesRoundTrip) {
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half-open");
}

// Property: under an arbitrary monotone event schedule the machine never
// breaks its invariants -- transitions chain (from == previous state),
// HalfOpen is only entered from Open via tick, the width cap stays >= 1,
// and the backoff multiplier widens exactly while Open.
TEST(BreakerPropertyTest, FuzzedSchedulesPreserveInvariants) {
  Rng rng(0xb4ea4e4u);
  for (int round = 0; round < 30; ++round) {
    BreakerOptions options;
    options.failure_threshold = 1 + rng.uniform_below(4);
    options.window = std::chrono::milliseconds(1 + rng.uniform_below(50));
    options.cooldown = std::chrono::milliseconds(1 + rng.uniform_below(50));
    const auto t0 = Clock::now();
    CircuitBreaker breaker(options, t0);
    BreakerState previous = BreakerState::kClosed;
    auto now = t0;
    for (int step = 0; step < 200; ++step) {
      now += std::chrono::milliseconds(rng.uniform_below(10));
      std::vector<BreakerTransition> transitions;
      switch (rng.uniform_below(3)) {
        case 0: transitions = breaker.record_failure(now); break;
        case 1: transitions = breaker.record_success(now); break;
        default: transitions = breaker.tick(now); break;
      }
      for (const BreakerTransition& transition : transitions) {
        EXPECT_EQ(transition.from, previous) << "round " << round;
        EXPECT_NE(transition.from, transition.to) << "round " << round;
        if (transition.to == BreakerState::kHalfOpen) {
          EXPECT_EQ(transition.from, BreakerState::kOpen) << "round " << round;
        }
        if (transition.from == BreakerState::kClosed) {
          EXPECT_EQ(transition.to, BreakerState::kOpen) << "round " << round;
        }
        previous = transition.to;
      }
      EXPECT_EQ(breaker.state(), previous) << "round " << round;
      EXPECT_GE(breaker.cap(1), 1u);
      EXPECT_GE(breaker.cap(7), 1u);
      EXPECT_LE(breaker.cap(7), 7u);
      if (breaker.state() == BreakerState::kOpen) {
        EXPECT_DOUBLE_EQ(breaker.backoff_multiplier(),
                         options.backoff_multiplier);
      } else {
        EXPECT_DOUBLE_EQ(breaker.backoff_multiplier(), 1.0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Supervision journal records

TEST(SupervisionRecordTest, CodecRoundTrips) {
  SupervisionEvent event;
  event.kind = SupervisionEvent::Kind::kDeadlineAdapt;
  event.backoff_ms = 450.0;
  event.detail = "adaptive deadline now 450ms";
  const std::string record = encode_supervision_record(event);
  EXPECT_TRUE(is_supervision_record(record));
  EXPECT_FALSE(is_quarantine_record(record));
  EXPECT_EQ(decode_supervision_record(record), event.to_json());
}

TEST(SupervisionRecordTest, PreSupervisionReadersFailLoudly) {
  SupervisionEvent event;
  event.kind = SupervisionEvent::Kind::kBreakerOpen;
  const std::string record = encode_supervision_record(event);
  // A reader that does not know about supervision records must throw, not
  // misparse the record as a replica payload.
  EXPECT_THROW(decode_campaign_record(record), std::invalid_argument);
  EXPECT_THROW(decode_supervision_record("replica 4 completed"),
               std::invalid_argument);
}

TEST(SupervisionRecordTest, UnsupervisedResumeRefusesSupervisedJournal) {
  const fs::path dir = fresh_dir("div_supervision_refusal");
  CampaignOptions options;
  options.directory = dir.string();
  options.meta = "refusal-test 1\n";
  const auto task = [](std::size_t replica,
                       Rng&) -> std::optional<std::string> {
    return "p" + std::to_string(replica);
  };
  ASSERT_TRUE(run_campaign(1, task, options).complete());
  {
    // A supervised session would have journaled its deadline decisions.
    SupervisionEvent event;
    event.kind = SupervisionEvent::Kind::kDeadlineKill;
    event.replica = 0;
    JournalWriter writer((dir / "results.journal").string());
    writer.append(encode_supervision_record(event));
    writer.flush();
  }
  options.resume = true;
  EXPECT_THROW(run_campaign(2, task, options), std::runtime_error);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Supervisor integration (thread mode)

std::optional<std::string> rng_payload(std::size_t replica, Rng& rng) {
  return "r" + std::to_string(replica) + ":" + std::to_string(rng.next());
}

std::vector<std::size_t> iota_ids(std::size_t n) {
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  return ids;
}

struct Collector {
  std::vector<std::optional<std::string>> payloads;
  explicit Collector(std::size_t n) : payloads(n) {}
  std::function<void(std::size_t, std::string&&)> sink() {
    return [this](std::size_t replica, std::string&& payload) {
      payloads[replica] = std::move(payload);
    };
  }
};

TEST(AdaptiveSupervisorTest, LearnedDeadlineKillsHangWithoutFixedDeadline) {
  // No fixed deadline at all: the healthy replicas teach the estimator the
  // completion-time distribution, the confidence gate opens, and the hung
  // replica is killed at the LEARNED deadline, retried (it hangs again),
  // and quarantined -- with every healthy payload intact.
  constexpr std::uint64_t kMaster = 90;
  const std::size_t n = 8;
  const std::size_t hung = n - 1;
  EstimatorOptions est_options;
  est_options.quantile = 0.5;
  est_options.safety_factor = 3.0;
  est_options.min_samples = 4;
  CompletionEstimator estimator(est_options);
  SupervisorOptions options;
  options.master_seed = kMaster;
  options.num_threads = 2;
  options.max_attempts = 2;
  options.backoff_base = 1ms;
  options.deadline = 0ms;  // auto mode: no fixed budget to fall back on
  options.deadline_auto = true;
  options.estimator = &estimator;
  std::vector<SupervisionEvent> events;
  std::mutex events_mu;
  options.on_event = [&](const SupervisionEvent& event) {
    std::lock_guard<std::mutex> lock(events_mu);
    events.push_back(event);
  };
  Collector got(n);
  const SupervisorReport report = run_supervised_set(
      iota_ids(n),
      [&](std::size_t replica, Rng& rng,
          const CancelToken& cancel) -> std::optional<std::string> {
        if (replica == hung) {
          while (!cancel.requested()) {
            std::this_thread::sleep_for(1ms);
          }
          EXPECT_EQ(cancel.reason(), CancelReason::kDeadline);
          return std::nullopt;
        }
        // Healthy work takes a visible, consistent beat so the learned
        // deadline is far below the hang's unbounded wall time.
        std::this_thread::sleep_for(5ms);
        return rng_payload(replica, rng);
      },
      got.sink(), options);

  EXPECT_EQ(report.succeeded, n - 1);
  EXPECT_GE(report.deadline_kills, 1u);
  EXPECT_GE(report.deadline_adapts, 1u);
  EXPECT_GT(report.learned_deadline_ms, 0.0);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].replica, hung);
  for (std::size_t replica = 0; replica < n - 1; ++replica) {
    ASSERT_TRUE(got.payloads[replica].has_value()) << replica;
    Rng expected(Rng::retry_seed(kMaster, replica, 0));
    EXPECT_EQ(*got.payloads[replica],
              "r" + std::to_string(replica) + ":" +
                  std::to_string(expected.next()));
  }
  bool saw_adapt = false;
  bool saw_learned_kill = false;
  for (const SupervisionEvent& event : events) {
    if (event.kind == SupervisionEvent::Kind::kDeadlineAdapt) {
      saw_adapt = true;
      EXPECT_GT(event.backoff_ms, 0.0);
      EXPECT_NE(event.detail.find("adaptive deadline"), std::string::npos);
    }
    if (event.kind == SupervisionEvent::Kind::kDeadlineKill) {
      saw_learned_kill = true;
      EXPECT_NE(event.detail.find("learned deadline"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_adapt);
  EXPECT_TRUE(saw_learned_kill);
}

TEST(AdaptiveSupervisorTest, PredictiveSpeculationWinsOnLearnedQuantile) {
  // Once the estimator is confident, speculation no longer waits for this
  // run's median warmup -- an attempt projected past the learned quantile
  // gets its twin immediately, and the twin (fast second execution) wins.
  constexpr std::uint64_t kMaster = 91;
  const std::size_t n = 8;
  const std::size_t slow = n - 1;
  EstimatorOptions est_options;
  est_options.quantile = 0.5;
  est_options.min_samples = 4;
  CompletionEstimator estimator(est_options);
  SupervisorOptions options;
  options.master_seed = kMaster;
  options.num_threads = 2;
  options.straggler_factor = 3.0;
  options.straggler_warmup = 1000;  // reactive path unreachable: must predict
  options.estimator = &estimator;
  std::atomic<unsigned> slow_execs{0};
  Collector got(n);
  const SupervisorReport report = run_supervised_set(
      iota_ids(n),
      [&](std::size_t replica, Rng& rng,
          const CancelToken& cancel) -> std::optional<std::string> {
        auto payload = rng_payload(replica, rng);
        if (replica == slow && slow_execs.fetch_add(1) == 0) {
          for (int i = 0; i < 10000 && !cancel.requested(); ++i) {
            std::this_thread::sleep_for(1ms);
          }
          if (cancel.requested()) {
            EXPECT_EQ(cancel.reason(), CancelReason::kSuperseded);
            return std::nullopt;
          }
        } else if (replica != slow) {
          std::this_thread::sleep_for(2ms);
        }
        return payload;
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, n);
  EXPECT_GE(report.speculative_launches, 1u);
  EXPECT_GE(report.speculative_wins, 1u);
  EXPECT_EQ(report.retries, 0u);
  // Same attempt-0 stream regardless of which instance won.
  Rng expected(Rng::retry_seed(kMaster, slow, 0));
  ASSERT_TRUE(got.payloads[slow].has_value());
  EXPECT_EQ(*got.payloads[slow],
            "r" + std::to_string(slow) + ":" + std::to_string(expected.next()));
}

TEST(AdaptiveSupervisorTest, BreakerOpensOnTransientFailureSpike) {
  // Four transient failures inside the window trip the breaker; the run
  // still completes (retries succeed) and the trip is visible in both the
  // report counters and the event stream.
  SupervisorOptions options;
  options.master_seed = 17;
  options.num_threads = 2;
  options.max_attempts = 3;
  options.backoff_base = 1ms;
  options.breaker_enabled = true;
  options.breaker.failure_threshold = 4;
  options.breaker.window = 10'000ms;   // every failure stays in the window
  options.breaker.cooldown = 10'000ms;  // no close during the test
  std::vector<SupervisionEvent::Kind> kinds;
  std::mutex kinds_mu;
  options.on_event = [&](const SupervisionEvent& event) {
    std::lock_guard<std::mutex> lock(kinds_mu);
    kinds.push_back(event.kind);
  };
  std::atomic<unsigned> failures{0};
  const std::size_t n = 6;
  Collector got(n);
  const SupervisorReport report = run_supervised_set(
      iota_ids(n),
      [&](std::size_t replica, Rng& rng,
          const CancelToken&) -> std::optional<std::string> {
        // Each replica's first execution fails: 6 transient failures, well
        // past the threshold of 4.
        if (failures.fetch_add(1) < n) {
          throw std::runtime_error("io timeout: transient spike");
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, n);
  EXPECT_GE(report.breaker_opens, 1u);
  const auto opened =
      std::count(kinds.begin(), kinds.end(),
                 SupervisionEvent::Kind::kBreakerOpen);
  EXPECT_EQ(static_cast<std::uint64_t>(opened), report.breaker_opens);
}

TEST(AdaptiveSupervisorTest, EstimatorLearnsFromSupervisedSuccesses) {
  // The supervisor feeds every successful attempt's wall time back into the
  // estimator it was given -- that is the loop that makes a later
  // --deadline-ms auto session (or this one, after the gate opens) smart.
  EstimatorOptions est_options;
  est_options.min_samples = 4;
  CompletionEstimator estimator(est_options);
  SupervisorOptions options;
  options.num_threads = 2;
  options.estimator = &estimator;
  Collector got(6);
  const SupervisorReport report = run_supervised_set(
      iota_ids(6),
      [&](std::size_t replica, Rng& rng,
          const CancelToken&) -> std::optional<std::string> {
        std::this_thread::sleep_for(1ms);
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 6u);
  EXPECT_EQ(estimator.samples(), 6u);
  EXPECT_TRUE(estimator.confident());
  EXPECT_GT(estimator.quantile_seconds(), 0.0);
}

}  // namespace
}  // namespace divlib
