#include "engine/batch_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "core/discordance_tracker.hpp"
#include "core/div_process.hpp"
#include "core/opinion_plane.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/supervisor.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "stats/chi_square.hpp"

namespace divlib {
namespace {

// Two-sample chi-square homogeneity test over winner categories (the
// test_jump_engine harness).
double two_sample_chi_square_p(const std::vector<std::uint64_t>& a,
                               const std::vector<std::uint64_t>& b) {
  double total_a = 0.0;
  double total_b = 0.0;
  for (const auto count : a) total_a += static_cast<double>(count);
  for (const auto count : b) total_b += static_cast<double>(count);
  const double total = total_a + total_b;
  double statistic = 0.0;
  int used = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double column = static_cast<double>(a[i] + b[i]);
    if (column == 0.0) {
      continue;
    }
    ++used;
    const double expected_a = column * total_a / total;
    const double expected_b = column * total_b / total;
    statistic += (a[i] - expected_a) * (a[i] - expected_a) / expected_a;
    statistic += (b[i] - expected_b) * (b[i] - expected_b) / expected_b;
  }
  return chi_square_survival(statistic, used - 1);
}

// Two-sample Kolmogorov-Smirnov statistic D = sup |F_a - F_b|.
double two_sample_ks_statistic(std::vector<double> a, std::vector<double> b) {
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    d = std::max(d, std::abs(static_cast<double>(i) / a.size() -
                             static_cast<double>(j) / b.size()));
  }
  return d;
}

void expect_same_result(const RunResult& scalar, const RunResult& lane,
                        const std::string& where) {
  EXPECT_EQ(scalar.status, lane.status) << where;
  EXPECT_EQ(scalar.completed, lane.completed) << where;
  EXPECT_EQ(scalar.steps, lane.steps) << where;
  EXPECT_EQ(scalar.min_active, lane.min_active) << where;
  EXPECT_EQ(scalar.max_active, lane.max_active) << where;
  EXPECT_EQ(scalar.num_active, lane.num_active) << where;
  EXPECT_EQ(scalar.final_sum, lane.final_sum) << where;
  EXPECT_DOUBLE_EQ(scalar.final_z, lane.final_z) << where;
  EXPECT_EQ(scalar.winner, lane.winner) << where;
}

// The core contract: lane L of run_batch, seeded like the scalar isolated
// driver's attempt 0, is BIT-identical to run() on its own OpinionState --
// same result fields, same final opinion vector, and the rng streams line up
// draw for draw (checked by comparing the next raw output after the run).
TEST(BatchEngine, LanesBitIdenticalToScalarRun) {
  Rng graph_rng(0x6a7c);
  const Graph graph = make_connected_random_regular(48, 4, graph_rng);
  constexpr unsigned kLanes = 8;
  constexpr std::uint64_t kMaster = 0xabcd;
  RunOptions options;

  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    // Scalar reference replicas.
    DivProcess process(graph, scheme);
    std::vector<RunResult> scalar(kLanes);
    std::vector<std::vector<Opinion>> scalar_final(kLanes);
    std::vector<std::uint64_t> scalar_next(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      Rng rng(Rng::retry_seed(kMaster, lane, 0));
      OpinionState state(
          graph, uniform_random_opinions(graph.num_vertices(), 1, 4, rng));
      scalar[lane] = run(process, state, rng, options);
      scalar_final[lane].assign(state.opinions().begin(),
                                state.opinions().end());
      scalar_next[lane] = rng.next();
    }

    // The same replicas as lanes of one plane.
    OpinionPlane plane(graph, kLanes);
    std::vector<Rng> rngs;
    rngs.reserve(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      rngs.emplace_back(Rng::retry_seed(kMaster, lane, 0));
      plane.assign_lane(
          lane, uniform_random_opinions(graph.num_vertices(), 1, 4,
                                        rngs[lane]));
    }
    const std::vector<RunResult> batch =
        run_batch(graph, scheme, plane, rngs, options);

    ASSERT_EQ(batch.size(), kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      const std::string where =
          std::string(to_string(scheme)) + " lane " + std::to_string(lane);
      expect_same_result(scalar[lane], batch[lane], where);
      const auto lane_view = plane.lane_opinions(lane);
      ASSERT_EQ(lane_view.size(), scalar_final[lane].size()) << where;
      EXPECT_TRUE(std::equal(lane_view.begin(), lane_view.end(),
                             scalar_final[lane].begin()))
          << where;
      // Stream alignment: the lane consumed exactly the scalar draws.
      EXPECT_EQ(rngs[lane].next(), scalar_next[lane]) << where;
    }
  }
}

// Opinion ranges wider than a byte force the plane onto full-width cells
// (promote_to_wide_).  The promotion is exercised both ways: a plane whose
// first assignment is already wide, and a plane where narrow lanes are
// assigned first and a later wide lane re-encodes them in place.  Either
// way the lanes must stay bit-identical to scalar runs.
TEST(BatchEngine, WideRangeLanesMatchScalarRun) {
  Rng graph_rng(0x77de);
  const Graph graph = make_connected_random_regular(40, 4, graph_rng);
  constexpr unsigned kLanes = 6;
  constexpr std::uint64_t kMaster = 0x51de;
  RunOptions options;
  // Lanes alternate between a narrow range (fits a byte) and a wide one
  // (width 300 > 256); the first wide assignment triggers the promotion.
  const auto range_hi = [](unsigned lane) -> Opinion {
    return (lane % 2 == 0) ? 4 : 300;
  };

  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    DivProcess process(graph, scheme);
    std::vector<RunResult> scalar(kLanes);
    std::vector<std::vector<Opinion>> scalar_final(kLanes);
    std::vector<std::uint64_t> scalar_next(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      Rng rng(Rng::retry_seed(kMaster, lane, 0));
      OpinionState state(graph,
                         uniform_random_opinions(graph.num_vertices(), 1,
                                                 range_hi(lane), rng));
      scalar[lane] = run(process, state, rng, options);
      scalar_final[lane].assign(state.opinions().begin(),
                                state.opinions().end());
      scalar_next[lane] = rng.next();
    }

    OpinionPlane plane(graph, kLanes);
    EXPECT_EQ(plane.cell_bytes(), 1u);
    std::vector<Rng> rngs;
    rngs.reserve(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      rngs.emplace_back(Rng::retry_seed(kMaster, lane, 0));
      plane.assign_lane(lane,
                        uniform_random_opinions(graph.num_vertices(), 1,
                                                range_hi(lane), rngs[lane]));
    }
    // The first wide lane (lane 1) promoted the whole plane.
    EXPECT_EQ(plane.cell_bytes(), sizeof(Opinion));
    const std::vector<RunResult> batch =
        run_batch(graph, scheme, plane, rngs, options);

    ASSERT_EQ(batch.size(), kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      const std::string where = std::string(to_string(scheme)) +
                                " wide lane " + std::to_string(lane);
      expect_same_result(scalar[lane], batch[lane], where);
      const auto lane_view = plane.lane_opinions(lane);
      ASSERT_EQ(lane_view.size(), scalar_final[lane].size()) << where;
      EXPECT_TRUE(std::equal(lane_view.begin(), lane_view.end(),
                             scalar_final[lane].begin()))
          << where;
      EXPECT_EQ(rngs[lane].next(), scalar_next[lane]) << where;
    }
  }
}

TEST(BatchEngine, StepCapMatchesScalarPerLane) {
  Rng graph_rng(0x9b1);
  const Graph graph = make_connected_random_regular(32, 4, graph_rng);
  constexpr unsigned kLanes = 4;
  RunOptions options;
  options.max_steps = 17;

  DivProcess process(graph, SelectionScheme::kEdge);
  OpinionPlane plane(graph, kLanes);
  std::vector<Rng> rngs;
  std::vector<RunResult> scalar(kLanes);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    Rng rng(Rng::retry_seed(0x5eed, lane, 0));
    OpinionState state(
        graph, uniform_random_opinions(graph.num_vertices(), 1, 9, rng));
    scalar[lane] = run(process, state, rng, options);

    rngs.emplace_back(Rng::retry_seed(0x5eed, lane, 0));
    plane.assign_lane(lane, uniform_random_opinions(graph.num_vertices(), 1,
                                                    9, rngs[lane]));
  }
  const std::vector<RunResult> batch =
      run_batch(graph, SelectionScheme::kEdge, plane, rngs, options);
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    EXPECT_EQ(batch[lane].status, RunStatus::kCapped);
    expect_same_result(scalar[lane], batch[lane],
                       "capped lane " + std::to_string(lane));
  }
}

TEST(BatchEngine, RejectsTracingAndMismatchedRngs) {
  const Graph graph = make_cycle(6);
  OpinionPlane plane(graph, 2);
  std::vector<Rng> rngs;
  for (unsigned lane = 0; lane < 2; ++lane) {
    rngs.emplace_back(Rng::retry_seed(7, lane, 0));
    plane.assign_lane(lane, uniform_random_opinions(6, 1, 3, rngs[lane]));
  }
  RunOptions traced;
  traced.trace_stride = 1;
  EXPECT_THROW(
      run_batch(graph, SelectionScheme::kEdge, plane, rngs, traced),
      std::invalid_argument);

  std::vector<Rng> short_rngs;
  short_rngs.emplace_back(1);
  EXPECT_THROW(
      run_batch(graph, SelectionScheme::kEdge, plane, short_rngs,
                RunOptions{}),
      std::invalid_argument);
}

// A fired per-lane token drains exactly that lane; its groupmates run to
// consensus untouched, and the drained lane's state is a valid step-boundary
// configuration (aggregates match a recount).
TEST(BatchEngine, PerLaneCancelDrainsOnlyThatLane) {
  Rng graph_rng(0x77);
  const Graph graph = make_connected_random_regular(32, 4, graph_rng);
  constexpr unsigned kLanes = 3;
  OpinionPlane plane(graph, kLanes);
  std::vector<Rng> rngs;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    rngs.emplace_back(Rng::retry_seed(0xc0de, lane, 0));
    plane.assign_lane(lane, uniform_random_opinions(graph.num_vertices(), 1,
                                                    5, rngs[lane]));
  }
  CancelToken mid_token;
  mid_token.request(CancelReason::kUser);
  const CancelToken* cancels[kLanes] = {nullptr, &mid_token, nullptr};
  const std::vector<RunResult> results = run_batch(
      graph, SelectionScheme::kEdge, plane, rngs, RunOptions{}, cancels);

  EXPECT_EQ(results[0].status, RunStatus::kCompleted);
  EXPECT_EQ(results[2].status, RunStatus::kCompleted);
  EXPECT_EQ(results[1].status, RunStatus::kCancelled);
  EXPECT_EQ(results[1].steps, 0u);  // pre-fired: drained before any step
  // Lane 1's aggregates still describe its (initial) configuration.
  std::int64_t sum = 0;
  for (const Opinion x : plane.lane_opinions(1)) sum += x;
  EXPECT_EQ(sum, results[1].final_sum);
}

TEST(BatchEngine, WinnerDistributionMatchesScalarEngine) {
  Rng graph_rng(0x23a);
  const Graph graph = make_connected_random_regular(32, 4, graph_rng);
  constexpr int kReplicas = 400;
  constexpr Opinion kLo = 1;
  constexpr Opinion kHi = 3;
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    // Scalar reference sample on one seed family.
    DivProcess process(graph, scheme);
    std::vector<std::uint64_t> scalar_winners(kHi - kLo + 1, 0);
    std::vector<double> scalar_steps;
    for (int replica = 0; replica < kReplicas; ++replica) {
      Rng rng(Rng::substream_seed(0xbeef, static_cast<std::uint64_t>(replica)));
      OpinionState state(
          graph,
          uniform_random_opinions(graph.num_vertices(), kLo, kHi, rng));
      const RunResult result = run(process, state, rng, RunOptions{});
      ASSERT_EQ(result.status, RunStatus::kCompleted);
      ++scalar_winners[static_cast<std::size_t>(*result.winner - kLo)];
      scalar_steps.push_back(static_cast<double>(result.steps));
    }

    // Batched sample on an independent seed family.
    MonteCarloOptions mc;
    mc.master_seed = 0xcafe;
    mc.batch_lanes = 16;
    mc.num_threads = 2;
    const auto batch = run_div_replicas_batched(
        graph, scheme, kReplicas,
        [&graph](std::size_t, Rng& rng) {
          return uniform_random_opinions(graph.num_vertices(), kLo, kHi, rng);
        },
        RunOptions{}, mc);
    ASSERT_TRUE(batch.report.ok());
    std::vector<std::uint64_t> batch_winners(kHi - kLo + 1, 0);
    std::vector<double> batch_steps;
    for (const auto& result : batch.results) {
      ASSERT_TRUE(result.has_value());
      ASSERT_EQ(result->status, RunStatus::kCompleted);
      ++batch_winners[static_cast<std::size_t>(*result->winner - kLo)];
      batch_steps.push_back(static_cast<double>(result->steps));
    }

    const double chi_p =
        two_sample_chi_square_p(scalar_winners, batch_winners);
    EXPECT_GT(chi_p, 1e-3) << "winner distributions diverge, scheme "
                           << to_string(scheme);
    const double d = two_sample_ks_statistic(scalar_steps, batch_steps);
    const double critical =
        1.95 * std::sqrt(2.0 / static_cast<double>(kReplicas));
    EXPECT_LT(d, critical) << "completion-time ECDFs diverge, scheme "
                           << to_string(scheme);
  }
}

// The batched driver fills every slot with the scalar isolated driver's
// attempt-0 result, at any lane width / replica count alignment.
TEST(BatchDriver, SlotsMatchScalarAttemptZero) {
  Rng graph_rng(0x31);
  const Graph graph = make_connected_random_regular(24, 4, graph_rng);
  constexpr std::size_t kReplicas = 10;  // deliberately not a lane multiple
  constexpr std::uint64_t kMaster = 0xfeed;
  RunOptions run_options;

  DivProcess process(graph, SelectionScheme::kVertex);
  std::vector<RunResult> scalar(kReplicas);
  for (std::size_t replica = 0; replica < kReplicas; ++replica) {
    Rng rng(Rng::retry_seed(kMaster, replica, 0));
    OpinionState state(
        graph, uniform_random_opinions(graph.num_vertices(), 1, 4, rng));
    scalar[replica] = run(process, state, rng, run_options);
  }

  MonteCarloOptions mc;
  mc.master_seed = kMaster;
  mc.batch_lanes = 4;
  mc.num_threads = 3;
  const auto batch = run_div_replicas_batched(
      graph, SelectionScheme::kVertex, kReplicas,
      [&graph](std::size_t, Rng& rng) {
        return uniform_random_opinions(graph.num_vertices(), 1, 4, rng);
      },
      run_options, mc);

  EXPECT_EQ(batch.report.replicas, kReplicas);
  EXPECT_EQ(batch.report.attempted, kReplicas);
  EXPECT_TRUE(batch.report.ok());
  EXPECT_FALSE(batch.report.cancelled);
  ASSERT_EQ(batch.results.size(), kReplicas);
  for (std::size_t replica = 0; replica < kReplicas; ++replica) {
    ASSERT_TRUE(batch.results[replica].has_value());
    expect_same_result(scalar[replica], *batch.results[replica],
                       "replica " + std::to_string(replica));
  }
}

TEST(BatchDriver, PresetCancelClaimsNothing) {
  const Graph graph = make_cycle(8);
  CancelToken token;
  token.request(CancelReason::kUser);
  MonteCarloOptions mc;
  mc.batch_lanes = 4;
  mc.cancel = &token;
  const auto batch = run_div_replicas_batched(
      graph, SelectionScheme::kEdge, 8,
      [](std::size_t, Rng& rng) {
        return uniform_random_opinions(8, 1, 3, rng);
      },
      RunOptions{}, mc);
  EXPECT_TRUE(batch.report.cancelled);
  EXPECT_EQ(batch.report.attempted, 0u);
  for (const auto& result : batch.results) {
    EXPECT_FALSE(result.has_value());
  }
}

// The transposed discordance plane agrees with per-lane scalar trackers at a
// resync point, for both schemes, after an arbitrary mirrored move history.
TEST(OpinionPlaneTest, RebuildDiscordanceMatchesScalarTrackers) {
  Rng graph_rng(0x88);
  const Graph graph = make_connected_random_regular(40, 4, graph_rng);
  constexpr unsigned kLanes = 5;

  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    OpinionPlane plane(graph, kLanes);
    std::vector<OpinionState> states;
    states.reserve(kLanes);
    Rng init_rng(0x404);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      const std::vector<Opinion> opinions =
          uniform_random_opinions(graph.num_vertices(), 1, 6, init_rng);
      plane.assign_lane(lane, opinions);
      states.emplace_back(graph, opinions);
    }
    std::vector<DiscordanceTracker> trackers;
    trackers.reserve(kLanes);
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      trackers.emplace_back(states[lane], scheme);
    }

    // Mirror a random move history into both representations.
    Rng move_rng(0x505);
    for (int move = 0; move < 300; ++move) {
      const unsigned lane =
          static_cast<unsigned>(move_rng.uniform_below(kLanes));
      const VertexId v = static_cast<VertexId>(
          move_rng.uniform_below(graph.num_vertices()));
      const Opinion value =
          static_cast<Opinion>(1 + move_rng.uniform_below(6));
      const Opinion before = states[lane].opinion(v);
      states[lane].set(v, value);
      trackers[lane].apply_move(v, before);
      plane.set(lane, v, value);
    }

    plane.rebuild_discordance();
    ASSERT_TRUE(plane.discordance_built());
    for (unsigned lane = 0; lane < kLanes; ++lane) {
      EXPECT_EQ(plane.discordant_pairs(lane),
                trackers[lane].total_discordant_pairs())
          << to_string(scheme) << " lane " << lane;
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        ASSERT_EQ(plane.discordance(lane, v), trackers[lane].discordance(v))
            << to_string(scheme) << " lane " << lane << " vertex " << v;
      }
    }
  }
}

// Bulk sampling is draw-for-draw identical to solo sampling: each lane's rng
// sees (updater, rank) / (pair draw) in its own order, and the streams end
// in the same position.
TEST(DiscordanceTrackerBulk, MatchesScalarSamples) {
  Rng graph_rng(0x91);
  const Graph graph = make_connected_random_regular(36, 4, graph_rng);
  Rng init_rng(0x92);
  const std::vector<Opinion> opinions =
      uniform_random_opinions(graph.num_vertices(), 1, 5, init_rng);
  constexpr std::size_t kLanes = 6;

  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    OpinionState state(graph, opinions);
    DiscordanceTracker tracker(state, scheme);
    ASSERT_FALSE(tracker.frozen());

    std::vector<Rng> solo;
    std::vector<Rng> bulk;
    std::vector<Rng*> bulk_ptrs;
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      solo.emplace_back(Rng::retry_seed(0xf00d, lane, 0));
      bulk.emplace_back(Rng::retry_seed(0xf00d, lane, 0));
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      bulk_ptrs.push_back(&bulk[lane]);
    }

    for (int round = 0; round < 20; ++round) {
      std::vector<SelectedPair> expected(kLanes);
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        expected[lane] = tracker.sample_discordant_pair(solo[lane]);
      }
      std::vector<SelectedPair> got(kLanes);
      tracker.sample_discordant_pairs(bulk_ptrs, got);
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        EXPECT_EQ(expected[lane].updater, got[lane].updater)
            << to_string(scheme) << " round " << round << " lane " << lane;
        EXPECT_EQ(expected[lane].observed, got[lane].observed)
            << to_string(scheme) << " round " << round << " lane " << lane;
      }
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      EXPECT_EQ(solo[lane].next(), bulk[lane].next()) << to_string(scheme);
    }
  }
}

TEST(DiscordanceTrackerBulk, RejectsSizeMismatch) {
  const Graph graph = make_cycle(6);
  OpinionState state(graph, {1, 2, 1, 2, 1, 2});
  DiscordanceTracker tracker(state, SelectionScheme::kEdge);
  Rng rng(1);
  Rng* rngs[1] = {&rng};
  std::vector<SelectedPair> out(2);
  EXPECT_THROW(tracker.sample_discordant_pairs(rngs, out),
               std::invalid_argument);
}

// The frozen alias table samples the same conditional law: updaters are
// always discordant, observeds always disagree with them, and the empirical
// updater marginal matches disc(v)/d(v) (chi-square).  Any move invalidates
// the freeze; the edge scheme's freeze is a documented no-op.
TEST(DiscordanceTrackerAlias, FrozenSamplingMatchesWeights) {
  Rng graph_rng(0xa1);
  const Graph graph = make_connected_random_regular(24, 4, graph_rng);
  Rng init_rng(0xa2);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 3, init_rng));
  DiscordanceTracker tracker(state, SelectionScheme::kVertex);
  ASSERT_FALSE(tracker.frozen());
  EXPECT_FALSE(tracker.alias_frozen());

  tracker.freeze_alias();
  ASSERT_TRUE(tracker.alias_frozen());

  constexpr int kSamples = 20000;
  std::vector<std::uint64_t> counts(graph.num_vertices(), 0);
  Rng rng(0xa3);
  for (int i = 0; i < kSamples; ++i) {
    const SelectedPair pair = tracker.sample_discordant_pair(rng);
    ASSERT_GT(tracker.discordance(pair.updater), 0u);
    ASSERT_NE(state.opinion(pair.updater), state.opinion(pair.observed));
    ++counts[pair.updater];
  }
  std::vector<double> expected(graph.num_vertices(), 0.0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    expected[v] = static_cast<double>(tracker.discordance(v)) /
                  static_cast<double>(graph.degree(v));
  }
  const ChiSquareResult chi = chi_square_test(counts, expected);
  EXPECT_GT(chi.p_value, 1e-3);

  // A move invalidates the table; sampling falls back to the Fenwick path.
  const VertexId mover = 0;
  const Opinion before = state.opinion(mover);
  const Opinion moved = before == 1 ? 2 : 1;
  state.set(mover, moved);
  tracker.apply_move(mover, before);
  EXPECT_FALSE(tracker.alias_frozen());
  const SelectedPair after = tracker.sample_discordant_pair(rng);
  EXPECT_NE(state.opinion(after.updater), state.opinion(after.observed));

  // rebuild_counts also invalidates.
  tracker.freeze_alias();
  ASSERT_TRUE(tracker.alias_frozen());
  tracker.rebuild_counts();
  EXPECT_FALSE(tracker.alias_frozen());

  // Edge scheme: freeze is a no-op (already O(1)).
  DiscordanceTracker edge_tracker(state, SelectionScheme::kEdge);
  edge_tracker.freeze_alias();
  EXPECT_FALSE(edge_tracker.alias_frozen());
}

// Thread-mode lock-step groups: payloads are identical to the scalar task's
// (the contract batch_task implementations must honor), every replica
// succeeds, and the report says groups actually formed.
TEST(SupervisorBatch, GroupsProduceScalarIdenticalPayloads) {
  constexpr std::size_t kReplicas = 16;
  constexpr std::uint64_t kMaster = 0xd00d;

  const auto payload_for = [](std::size_t replica, Rng& rng) {
    return std::to_string(replica) + ":" + std::to_string(rng.next());
  };

  std::vector<std::size_t> ids(kReplicas);
  for (std::size_t i = 0; i < kReplicas; ++i) ids[i] = i;

  // Scalar reference.
  std::map<std::size_t, std::string> scalar_payloads;
  {
    SupervisorOptions options;
    options.master_seed = kMaster;
    options.num_threads = 2;
    const SupervisorReport report = run_supervised_set(
        ids,
        [&](std::size_t replica, Rng& rng, const CancelToken&) {
          return std::optional<std::string>(payload_for(replica, rng));
        },
        [&](std::size_t replica, std::string&& payload) {
          scalar_payloads[replica] = std::move(payload);
        },
        options);
    ASSERT_EQ(report.succeeded, kReplicas);
    EXPECT_EQ(report.batch_groups, 0u);
    EXPECT_EQ(report.batched_attempts, 0u);
  }

  // Batched run: same payloads, and groups actually formed.
  std::map<std::size_t, std::string> batch_payloads;
  SupervisorOptions options;
  options.master_seed = kMaster;
  options.num_threads = 2;
  options.batch_lanes = 4;
  options.batch_task =
      [&](std::span<const BatchLane> lanes) {
        std::vector<std::optional<std::string>> verdicts;
        verdicts.reserve(lanes.size());
        for (const BatchLane& lane : lanes) {
          Rng rng(lane.seed);
          verdicts.emplace_back(payload_for(lane.replica, rng));
        }
        return verdicts;
      };
  const SupervisorReport report = run_supervised_set(
      ids,
      [&](std::size_t replica, Rng& rng, const CancelToken&) {
        return std::optional<std::string>(payload_for(replica, rng));
      },
      [&](std::size_t replica, std::string&& payload) {
        batch_payloads[replica] = std::move(payload);
      },
      options);

  EXPECT_EQ(report.succeeded, kReplicas);
  EXPECT_GE(report.batch_groups, 1u);
  EXPECT_GE(report.batched_attempts, options.batch_lanes);
  EXPECT_EQ(batch_payloads, scalar_payloads);
}

// A batch_task returning the wrong number of verdicts is a deterministic
// group failure: every lane fails fast into quarantine (no retry could
// change a logic error in the batch plumbing).
TEST(SupervisorBatch, VerdictCountMismatchQuarantinesTheGroup) {
  constexpr std::size_t kReplicas = 4;
  std::vector<std::size_t> ids(kReplicas);
  for (std::size_t i = 0; i < kReplicas; ++i) ids[i] = i;

  SupervisorOptions options;
  options.num_threads = 1;
  options.max_attempts = 1;
  options.batch_lanes = 4;
  options.batch_task =
      [](std::span<const BatchLane> lanes) {
        return std::vector<std::optional<std::string>>(lanes.size() - 1);
      };
  const SupervisorReport report = run_supervised_set(
      ids,
      [](std::size_t, Rng&, const CancelToken&) {
        return std::optional<std::string>("scalar");
      },
      [](std::size_t, std::string&&) {},
      options);

  EXPECT_EQ(report.succeeded, 0u);
  ASSERT_EQ(report.quarantined.size(), kReplicas);
  for (const QuarantineRecord& record : report.quarantined) {
    EXPECT_EQ(record.failure, FailureClass::kDeterministic);
    EXPECT_NE(record.message.find("verdicts"), std::string::npos);
  }
  EXPECT_EQ(report.fail_fasts, kReplicas);
}

// A throwing batch_task fails every lane with one shared classification;
// transient classes retry on the scalar-compatible retry seeds and the
// replicas still complete (here via a batch_task that succeeds on retry).
TEST(SupervisorBatch, GroupThrowRetriesEveryLane) {
  constexpr std::size_t kReplicas = 4;
  std::vector<std::size_t> ids(kReplicas);
  for (std::size_t i = 0; i < kReplicas; ++i) ids[i] = i;

  std::atomic<int> calls{0};
  SupervisorOptions options;
  options.num_threads = 1;
  options.max_attempts = 2;
  options.backoff_base = std::chrono::milliseconds{0};
  options.batch_lanes = 4;
  options.batch_task =
      [&](std::span<const BatchLane> lanes)
          -> std::vector<std::optional<std::string>> {
        if (calls.fetch_add(1) == 0) {
          throw std::runtime_error("transient group failure");
        }
        std::vector<std::optional<std::string>> verdicts;
        for (const BatchLane& lane : lanes) {
          verdicts.emplace_back(std::to_string(lane.replica));
        }
        return verdicts;
      };
  std::map<std::size_t, std::string> payloads;
  const SupervisorReport report = run_supervised_set(
      ids,
      [](std::size_t replica, Rng&, const CancelToken&) {
        return std::optional<std::string>(std::to_string(replica));
      },
      [&](std::size_t replica, std::string&& payload) {
        payloads[replica] = std::move(payload);
      },
      options);

  EXPECT_EQ(report.succeeded, kReplicas);
  EXPECT_EQ(report.retries, kReplicas);  // one retry per lane of the group
  ASSERT_EQ(payloads.size(), kReplicas);
  for (std::size_t replica = 0; replica < kReplicas; ++replica) {
    EXPECT_EQ(payloads[replica], std::to_string(replica));
  }
}

// ---------------------------------------------------------------------------
// Batched jump-chain engine (run_batch_jump) -- refusals, per-lane cancel,
// distributional equivalence, and the batched driver's slot contract.  The
// draw-for-draw bit-identity suite lives in test_jump_engine.cpp
// (BatchJump.LanesBitIdenticalToScalarJump and friends).

void expect_same_jump_result(const JumpRunResult& scalar,
                             const JumpRunResult& lane,
                             const std::string& where) {
  expect_same_result(scalar, lane, where);
  EXPECT_EQ(scalar.effective_steps, lane.effective_steps) << where;
  EXPECT_EQ(scalar.mode_switches, lane.mode_switches) << where;
}

TEST(BatchJump, RejectsTracingAndMismatchedRngs) {
  const Graph graph = make_cycle(6);
  OpinionPlane plane(graph, 2);
  std::vector<Rng> rngs;
  for (unsigned lane = 0; lane < 2; ++lane) {
    rngs.emplace_back(Rng::retry_seed(7, lane, 0));
    plane.assign_lane(lane, uniform_random_opinions(6, 1, 3, rngs[lane]));
  }
  RunOptions traced;
  traced.trace_stride = 1;
  EXPECT_THROW(
      run_batch_jump(graph, SelectionScheme::kEdge, plane, rngs, traced),
      std::invalid_argument);

  std::vector<Rng> short_rngs;
  short_rngs.emplace_back(1);
  EXPECT_THROW(
      run_batch_jump(graph, SelectionScheme::kEdge, plane, short_rngs,
                     RunOptions{}),
      std::invalid_argument);

  const CancelToken* one_cancel[1] = {nullptr};
  EXPECT_THROW(
      run_batch_jump(graph, SelectionScheme::kEdge, plane, rngs, RunOptions{},
                     one_cancel),
      std::invalid_argument);
}

// A fired per-lane token drains exactly that lane at a scheduled-clock poll;
// its groupmates run to consensus untouched, and the drained lane's
// aggregates still describe its configuration.
TEST(BatchJump, PerLaneCancelDrainsOnlyThatLane) {
  Rng graph_rng(0x78);
  const Graph graph = make_connected_random_regular(32, 4, graph_rng);
  constexpr unsigned kLanes = 3;
  OpinionPlane plane(graph, kLanes);
  std::vector<Rng> rngs;
  for (unsigned lane = 0; lane < kLanes; ++lane) {
    rngs.emplace_back(Rng::retry_seed(0xc0df, lane, 0));
    plane.assign_lane(lane, uniform_random_opinions(graph.num_vertices(), 1,
                                                    5, rngs[lane]));
  }
  CancelToken mid_token;
  mid_token.request(CancelReason::kUser);
  const CancelToken* cancels[kLanes] = {nullptr, &mid_token, nullptr};
  const std::vector<JumpRunResult> results = run_batch_jump(
      graph, SelectionScheme::kEdge, plane, rngs, RunOptions{}, cancels);

  EXPECT_EQ(results[0].status, RunStatus::kCompleted);
  EXPECT_EQ(results[2].status, RunStatus::kCompleted);
  EXPECT_EQ(results[1].status, RunStatus::kCancelled);
  EXPECT_EQ(results[1].steps, 0u);  // pre-fired: drained before any step
  EXPECT_EQ(results[1].effective_steps, 0u);
  std::int64_t sum = 0;
  for (const Opinion x : plane.lane_opinions(1)) sum += x;
  EXPECT_EQ(sum, results[1].final_sum);
}

// Distributional equivalence on INDEPENDENT seed families (the bit-identity
// suite pins same-seed equality; this pins the ensemble): winner categories
// by chi-square homogeneity, completion times by Kolmogorov-Smirnov, and the
// batched lanes must still actually skip scheduled work.
TEST(BatchJump, WinnerDistributionMatchesScalarJumpEngine) {
  Rng graph_rng(0x23b);
  const Graph graph = make_connected_random_regular(32, 4, graph_rng);
  constexpr int kReplicas = 400;
  constexpr Opinion kLo = 1;
  constexpr Opinion kHi = 3;
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    DivProcess process(graph, scheme);
    std::vector<std::uint64_t> scalar_winners(kHi - kLo + 1, 0);
    std::vector<double> scalar_steps;
    for (int replica = 0; replica < kReplicas; ++replica) {
      Rng rng(
          Rng::substream_seed(0xbeef, static_cast<std::uint64_t>(replica)));
      OpinionState state(
          graph,
          uniform_random_opinions(graph.num_vertices(), kLo, kHi, rng));
      const JumpRunResult result =
          run_jump(process, state, rng, RunOptions{});
      ASSERT_EQ(result.status, RunStatus::kCompleted);
      ++scalar_winners[static_cast<std::size_t>(*result.winner - kLo)];
      scalar_steps.push_back(static_cast<double>(result.steps));
    }

    MonteCarloOptions mc;
    mc.master_seed = 0xcafe;
    mc.batch_lanes = 16;
    mc.num_threads = 2;
    const auto batch = run_div_replicas_batched_jump(
        graph, scheme, kReplicas,
        [&graph](std::size_t, Rng& rng) {
          return uniform_random_opinions(graph.num_vertices(), kLo, kHi, rng);
        },
        RunOptions{}, mc);
    ASSERT_TRUE(batch.report.ok());
    std::vector<std::uint64_t> batch_winners(kHi - kLo + 1, 0);
    std::vector<double> batch_steps;
    double scheduled = 0.0;
    double effective = 0.0;
    for (const auto& result : batch.results) {
      ASSERT_TRUE(result.has_value());
      ASSERT_EQ(result->status, RunStatus::kCompleted);
      ++batch_winners[static_cast<std::size_t>(*result->winner - kLo)];
      batch_steps.push_back(static_cast<double>(result->steps));
      scheduled += static_cast<double>(result->steps);
      effective += static_cast<double>(result->effective_steps);
    }
    // The lanes must have spent lazy stretches asleep, not stepped naively
    // throughout.
    EXPECT_LT(effective, 0.8 * scheduled) << to_string(scheme);

    const double chi_p =
        two_sample_chi_square_p(scalar_winners, batch_winners);
    EXPECT_GT(chi_p, 1e-3) << "winner distributions diverge, scheme "
                           << to_string(scheme);
    const double d = two_sample_ks_statistic(scalar_steps, batch_steps);
    const double critical =
        1.95 * std::sqrt(2.0 / static_cast<double>(kReplicas));
    EXPECT_LT(d, critical) << "completion-time ECDFs diverge, scheme "
                           << to_string(scheme);
  }
}

// The batched jump driver fills every slot with the scalar run_jump
// attempt-0 result, at a replica count deliberately unaligned to the lane
// width, across a worker pool.
TEST(BatchDriver, JumpSlotsMatchScalarAttemptZero) {
  Rng graph_rng(0x32);
  const Graph graph = make_connected_random_regular(24, 4, graph_rng);
  constexpr std::size_t kReplicas = 10;  // deliberately not a lane multiple
  constexpr std::uint64_t kMaster = 0xfeee;
  RunOptions run_options;

  DivProcess process(graph, SelectionScheme::kVertex);
  std::vector<JumpRunResult> scalar(kReplicas);
  for (std::size_t replica = 0; replica < kReplicas; ++replica) {
    Rng rng(Rng::retry_seed(kMaster, replica, 0));
    OpinionState state(
        graph, uniform_random_opinions(graph.num_vertices(), 1, 4, rng));
    scalar[replica] = run_jump(process, state, rng, run_options);
  }

  MonteCarloOptions mc;
  mc.master_seed = kMaster;
  mc.batch_lanes = 4;
  mc.num_threads = 3;
  const auto batch = run_div_replicas_batched_jump(
      graph, SelectionScheme::kVertex, kReplicas,
      [&graph](std::size_t, Rng& rng) {
        return uniform_random_opinions(graph.num_vertices(), 1, 4, rng);
      },
      run_options, mc);

  EXPECT_EQ(batch.report.replicas, kReplicas);
  EXPECT_EQ(batch.report.attempted, kReplicas);
  EXPECT_TRUE(batch.report.ok());
  ASSERT_EQ(batch.results.size(), kReplicas);
  for (std::size_t replica = 0; replica < kReplicas; ++replica) {
    ASSERT_TRUE(batch.results[replica].has_value());
    expect_same_jump_result(scalar[replica], *batch.results[replica],
                            "replica " + std::to_string(replica));
  }
}

// SupervisorOptions::batch_lanes gets the same loud range guard the CLI
// applies to --batch-lanes: 0 and anything above kMaxBatchLanes refuse up
// front instead of silently degenerating (0 used to disable batching, and
// oversized widths allocated planes nothing could have asked for).
TEST(SupervisorBatch, RejectsOutOfRangeLaneCounts) {
  const std::vector<std::size_t> ids = {0, 1};
  const auto task = [](std::size_t, Rng&, const CancelToken&) {
    return std::optional<std::string>("ok");
  };
  const auto commit = [](std::size_t, std::string&&) {};

  for (const unsigned lanes : {0u, kMaxBatchLanes + 1}) {
    SupervisorOptions options;
    options.num_threads = 1;
    options.batch_lanes = lanes;
    EXPECT_THROW(run_supervised_set(ids, task, commit, options),
                 std::invalid_argument)
        << "batch_lanes=" << lanes;
  }

  SupervisorOptions options;
  options.num_threads = 1;
  options.batch_lanes = kMaxBatchLanes;  // the boundary itself is legal
  const SupervisorReport report =
      run_supervised_set(ids, task, commit, options);
  EXPECT_EQ(report.succeeded, ids.size());
}

}  // namespace
}  // namespace divlib
