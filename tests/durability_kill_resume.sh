#!/usr/bin/env bash
# Crash-recovery drill: SIGKILL a checkpointed campaign mid-flight, resume it,
# and require the merged results to be bit-identical to an uninterrupted run
# with the same master seed.  Exits 77 (CTest SKIP_RETURN_CODE) where the
# drill cannot run.
set -u

DIVSIM="${1:-}"
if [[ -z "${DIVSIM}" || ! -x "${DIVSIM}" ]]; then
  echo "SKIP: divsim binary not provided or not executable" >&2
  exit 77
fi
# The drill needs background jobs and signal delivery.
if ! kill -0 $$ 2>/dev/null; then
  echo "SKIP: cannot deliver signals in this environment" >&2
  exit 77
fi

WORK="$(mktemp -d)" || exit 77
trap 'rm -rf "${WORK}"' EXIT

# Slow-mixing graph + high step cap: each replica takes a few hundred ms, so
# the kill lands mid-campaign, while a full run still finishes in seconds.
ARGS=(run --graph path:1024 --k 9 --stop consensus --max-steps 20000000
      --replicas 24 --seed 7 --threads 2)

# Baseline: the same campaign, uninterrupted.
"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/baseline" \
    > "${WORK}/baseline.out" 2>&1
baseline_rc=$?
if [[ ${baseline_rc} -ne 0 ]]; then
  echo "FAIL: uninterrupted baseline exited ${baseline_rc}" >&2
  cat "${WORK}/baseline.out" >&2
  exit 1
fi

# Victim: same campaign in a fresh directory, SIGKILLed once the journal
# holds at least one record (so finished work exists to survive the crash).
"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/victim" \
    > "${WORK}/victim.out" 2>&1 &
victim_pid=$!
for _ in $(seq 1 500); do
  if ! kill -0 "${victim_pid}" 2>/dev/null; then
    break  # campaign finished before we could kill it; drill is vacuous
  fi
  if "${DIVSIM}" journal --dir "${WORK}/victim" 2>/dev/null \
      | grep -q '^replica '; then
    kill -9 "${victim_pid}" 2>/dev/null
    break
  fi
  sleep 0.01
done
wait "${victim_pid}" 2>/dev/null

# Resume must complete the remaining replicas and exit cleanly.
"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/victim" --resume \
    > "${WORK}/resume.out" 2>&1
resume_rc=$?
if [[ ${resume_rc} -ne 0 ]]; then
  echo "FAIL: resume exited ${resume_rc}" >&2
  cat "${WORK}/resume.out" >&2
  exit 1
fi

# The journal dump prints records sorted by replica id, so equality here is
# bit-identity of the merged per-replica results, independent of completion
# order.  A SIGKILL mid-append leaves a torn tail; resume truncates it and
# re-runs that replica, so the final journal must not be torn either.
"${DIVSIM}" journal --dir "${WORK}/baseline" \
    | grep '^replica ' > "${WORK}/baseline.records"
"${DIVSIM}" journal --dir "${WORK}/victim" \
    | grep '^replica ' > "${WORK}/victim.records"
if ! diff -u "${WORK}/baseline.records" "${WORK}/victim.records"; then
  echo "FAIL: resumed campaign diverged from the uninterrupted baseline" >&2
  exit 1
fi
if ! "${DIVSIM}" journal --dir "${WORK}/victim" > /dev/null; then
  echo "FAIL: resumed journal is torn or unreadable" >&2
  exit 1
fi
record_count=$(wc -l < "${WORK}/victim.records")
if [[ "${record_count}" -ne 24 ]]; then
  echo "FAIL: expected 24 journaled replicas, found ${record_count}" >&2
  exit 1
fi

echo "OK: kill + resume merged bit-identically (${record_count} replicas)"
exit 0
