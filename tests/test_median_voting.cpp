#include "core/median_voting.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(MedianVoting, Median3AllOrderings) {
  EXPECT_EQ(MedianVoting::median3(1, 2, 3), 2);
  EXPECT_EQ(MedianVoting::median3(3, 2, 1), 2);
  EXPECT_EQ(MedianVoting::median3(2, 3, 1), 2);
  EXPECT_EQ(MedianVoting::median3(2, 1, 3), 2);
  EXPECT_EQ(MedianVoting::median3(1, 3, 2), 2);
  EXPECT_EQ(MedianVoting::median3(3, 1, 2), 2);
}

TEST(MedianVoting, Median3WithTies) {
  EXPECT_EQ(MedianVoting::median3(5, 5, 5), 5);
  EXPECT_EQ(MedianVoting::median3(1, 1, 9), 1);
  EXPECT_EQ(MedianVoting::median3(9, 1, 9), 9);
  EXPECT_EQ(MedianVoting::median3(-4, -4, 0), -4);
}

TEST(MedianVoting, NameIsStable) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(MedianVoting(g).name(), "median/vertex");
}

TEST(MedianVoting, RejectsIsolatedVertices) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(MedianVoting{g}, std::invalid_argument);
}

TEST(MedianVoting, OnlyExistingValuesAppear) {
  const Graph g = make_complete(8);
  Rng init_rng(1);
  OpinionState state(g, uniform_random_opinions(8, 1, 7, init_rng));
  MedianVoting process(g);
  Rng rng(2);
  for (int step = 0; step < 5000 && !state.is_consensus(); ++step) {
    process.step(state, rng);
    // Median of existing values is always within the active range.
    EXPECT_GE(state.min_active(), 1);
    EXPECT_LE(state.max_active(), 7);
  }
}

TEST(MedianVoting, ReachesConsensusOnCompleteGraph) {
  const Graph g = make_complete(16);
  Rng init_rng(3);
  OpinionState state(g, uniform_random_opinions(16, 1, 5, init_rng));
  MedianVoting process(g);
  Rng rng(4);
  RunOptions options;
  options.max_steps = 2'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_TRUE(result.completed);
  EXPECT_TRUE(result.winner.has_value());
}

TEST(MedianVoting, ConvergesNearTheMedianOnCompleteGraph) {
  // Doerr et al.: consensus within O(sqrt(n log n)) ranks of the median.
  // Skewed configuration: median 2, mean noticeably higher.
  const Graph g = make_complete(90);
  constexpr int kReplicas = 300;
  const auto winners = run_replicas<Opinion>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        // 30x1, 30x2, 30x30: median 2, mean 11.
        OpinionState state(
            g, opinions_with_counts(90, 1, {30, 30, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                            0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                            0, 0, 0, 0, 0, 0, 30},
                                    rng));
        MedianVoting process(g);
        RunOptions options;
        options.max_steps = 5'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1);
      },
      {.master_seed = 44});
  int near_median = 0;
  for (const Opinion w : winners) {
    if (w >= 1 && w <= 2) {
      ++near_median;
    }
  }
  // The winner should be pinned at the median side, far from the mean (11).
  EXPECT_GT(near_median, kReplicas * 9 / 10);
}

}  // namespace
}  // namespace divlib
