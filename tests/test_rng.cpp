#include "rng/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace divlib {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, IsDeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(7);
  Rng b(8);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) {
      ++equal;
    }
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(11);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.uniform_below(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneIsAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_below(1), 0u);
  }
}

TEST(Rng, UniformBelowIsRoughlyUniform) {
  Rng rng(17);
  constexpr std::uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[rng.uniform_below(kBound)];
  }
  const double expected = static_cast<double>(kSamples) / kBound;
  for (const int count : counts) {
    EXPECT_NEAR(count, expected, 5.0 * std::sqrt(expected));
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(19);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t value = rng.uniform_int(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    seen.insert(value);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform_int(5, 5), 5);
  }
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(29);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, UniformRealRespectsBounds) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform_real(-2.5, 7.5);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 7.5);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(41);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, NormalHasUnitMoments) {
  Rng rng(43);
  constexpr int kSamples = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    const double z = rng.normal();
    sum += z;
    sum_sq += z * z;
  }
  EXPECT_NEAR(sum / kSamples, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kSamples, 1.0, 0.03);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(47);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(values.begin(), values.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, ShuffleOfSingletonAndEmptyIsNoop) {
  Rng rng(53);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SubstreamSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t replica = 0; replica < 10000; ++replica) {
    seeds.insert(Rng::substream_seed(123, replica));
  }
  EXPECT_EQ(seeds.size(), 10000u);
}

TEST(Rng, SubstreamSeedsDependOnMaster) {
  EXPECT_NE(Rng::substream_seed(1, 0), Rng::substream_seed(2, 0));
}

TEST(Rng, RetrySeedsAreCollisionFreeAcrossReplicaAttemptGrid) {
  // The supervisor hands out one stream per (replica, attempt) pair; a
  // collision anywhere in the grid would couple two attempts that must be
  // independent.  Sweep a realistic grid: 2000 replicas x 8 attempts.
  std::set<std::uint64_t> seeds;
  for (std::uint64_t replica = 0; replica < 2000; ++replica) {
    for (unsigned attempt = 0; attempt < 8; ++attempt) {
      seeds.insert(Rng::retry_seed(123, replica, attempt));
    }
  }
  EXPECT_EQ(seeds.size(), 2000u * 8u);
}

TEST(Rng, RetrySeedsDependOnMasterReplicaAndAttempt) {
  EXPECT_NE(Rng::retry_seed(1, 0, 1), Rng::retry_seed(2, 0, 1));
  EXPECT_NE(Rng::retry_seed(1, 0, 1), Rng::retry_seed(1, 1, 1));
  EXPECT_NE(Rng::retry_seed(1, 0, 1), Rng::retry_seed(1, 0, 2));
}

TEST(Rng, SubstreamsLookUniform) {
  for (std::uint64_t replica = 0; replica < 4; ++replica) {
    Rng rng(Rng::substream_seed(99, replica));
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
      sum += rng.uniform01();
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
  }
}

}  // namespace
}  // namespace divlib
