#include "core/div_process.hpp"

#include <gtest/gtest.h>

#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(DivProcess, UpdateRuleMatchesEquationOne) {
  EXPECT_EQ(DivProcess::updated_opinion(3, 7), 4);   // X_v < X_w => +1
  EXPECT_EQ(DivProcess::updated_opinion(3, 4), 4);
  EXPECT_EQ(DivProcess::updated_opinion(5, 5), 5);   // equal => unchanged
  EXPECT_EQ(DivProcess::updated_opinion(7, 3), 6);   // X_v > X_w => -1
  EXPECT_EQ(DivProcess::updated_opinion(4, 3), 3);
  EXPECT_EQ(DivProcess::updated_opinion(-2, 2), -1);
}

TEST(DivProcess, NameEncodesScheme) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(DivProcess(g, SelectionScheme::kVertex).name(), "div/vertex");
  EXPECT_EQ(DivProcess(g, SelectionScheme::kEdge).name(), "div/edge");
}

TEST(DivProcess, StepChangesAtMostOneVertexByOne) {
  const Graph g = make_complete(8);
  Rng rng(1);
  OpinionState state(g, uniform_random_opinions(8, 1, 5, rng));
  DivProcess process(g, SelectionScheme::kVertex);
  for (int step = 0; step < 2000; ++step) {
    const std::vector<Opinion> before(state.opinions().begin(),
                                      state.opinions().end());
    process.step(state, rng);
    int changed = 0;
    for (VertexId v = 0; v < 8; ++v) {
      const int delta = std::abs(state.opinion(v) - before[v]);
      EXPECT_LE(delta, 1);
      changed += delta;
    }
    EXPECT_LE(changed, 1);
  }
}

TEST(DivProcess, ConsensusIsAbsorbing) {
  const Graph g = make_complete(6);
  OpinionState state(g, std::vector<Opinion>(6, 3));
  DivProcess process(g, SelectionScheme::kEdge);
  Rng rng(2);
  for (int step = 0; step < 1000; ++step) {
    process.step(state, rng);
  }
  EXPECT_TRUE(state.is_consensus());
  EXPECT_EQ(state.min_active(), 3);
}

TEST(DivProcess, TwoAdjacentOpinionsBehaveLikePullVoting) {
  // With opinions {0, 1} the increment rule *is* the pull rule: the updater
  // moves to the observed value in one step.
  const Graph g = make_complete(4);
  OpinionState state(g, {0, 0, 1, 1});
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(3);
  for (int step = 0; step < 200 && !state.is_consensus(); ++step) {
    process.step(state, rng);
    EXPECT_GE(state.min_active(), 0);
    EXPECT_LE(state.max_active(), 1);
  }
  EXPECT_TRUE(state.is_consensus());
}

TEST(DivProcess, ActiveRangeNeverExpands) {
  const Graph g = make_complete(10);
  Rng rng(4);
  OpinionState state(g, uniform_random_opinions(10, 1, 9, rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Opinion lo = state.min_active();
  Opinion hi = state.max_active();
  for (int step = 0; step < 5000; ++step) {
    process.step(state, rng);
    EXPECT_GE(state.min_active(), lo);
    EXPECT_LE(state.max_active(), hi);
    lo = state.min_active();
    hi = state.max_active();
  }
}

TEST(DivProcess, EventuallyReachesConsensusOnSmallGraph) {
  const Graph g = make_complete(6);
  Rng rng(5);
  OpinionState state(g, {1, 2, 3, 4, 5, 6});
  DivProcess process(g, SelectionScheme::kEdge);
  std::uint64_t steps = 0;
  while (!state.is_consensus() && steps < 1'000'000) {
    process.step(state, rng);
    ++steps;
  }
  ASSERT_TRUE(state.is_consensus());
  // Average is 3.5: the winner must be 3 or 4 on a complete graph...
  // but on *any* graph the winner lies within the initial range.
  EXPECT_GE(state.min_active(), 1);
  EXPECT_LE(state.min_active(), 6);
}

TEST(DivProcess, RejectsUnusableGraphs) {
  const Graph isolated(3, {{0, 1}});
  EXPECT_THROW(DivProcess(isolated, SelectionScheme::kVertex),
               std::invalid_argument);
  const Graph edgeless(3, {});
  EXPECT_THROW(DivProcess(edgeless, SelectionScheme::kEdge),
               std::invalid_argument);
}

TEST(DivProcess, DeterministicGivenSeed) {
  const Graph g = make_complete(8);
  Rng seed_rng(6);
  const auto initial = uniform_random_opinions(8, 1, 5, seed_rng);
  OpinionState a(g, initial);
  OpinionState b(g, initial);
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng_a(77);
  Rng rng_b(77);
  for (int step = 0; step < 1000; ++step) {
    process.step(a, rng_a);
    process.step(b, rng_b);
  }
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(a.opinion(v), b.opinion(v));
  }
}

}  // namespace
}  // namespace divlib
