// Tests for the telemetry subsystem (src/obs/): JSON building and JSONL
// emission, the lock-free metrics registry, per-run trajectory metrics and
// their determinism contract, and the campaign heartbeat.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <limits>
#include <thread>
#include <vector>

#include "core/div_process.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/jump_engine.hpp"
#include "engine/montecarlo.hpp"
#include "graph/random_graphs.hpp"
#include "obs/heartbeat.hpp"
#include "obs/jsonl.hpp"
#include "obs/metrics.hpp"
#include "obs/run_metrics.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// ---------------------------------------------------------------- Jsonl ---

TEST(JsonlTest, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(JsonlTest, DoublesRenderFinitelyAndNonFiniteAsNull) {
  EXPECT_EQ(json_double(1.5), "1.5");
  EXPECT_EQ(json_double(0.0), "0");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonlTest, ObjectPreservesInsertionOrderAndTypes) {
  JsonObject object;
  object.field("s", "x\"y")
      .field("u", std::uint64_t{7})
      .field("i", std::int64_t{-3})
      .field("d", 0.25)
      .field("b", true)
      .raw_field("nested", "[1,2]");
  EXPECT_EQ(object.str(),
            "{\"s\":\"x\\\"y\",\"u\":7,\"i\":-3,\"d\":0.25,\"b\":true,"
            "\"nested\":[1,2]}");
}

TEST(JsonlTest, WriterEmitsOneParseableLinePerRecord) {
  const std::string path = temp_path("divlib_jsonl_test.jsonl");
  {
    JsonlWriter writer(path);
    writer.emit("{\"a\":1}");
    writer.emit("{\"b\":2}");
    writer.sync();
    EXPECT_EQ(writer.lines_written(), 2u);
    EXPECT_EQ(writer.path(), path);
  }
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "{\"a\":1}");
  EXPECT_EQ(lines[1], "{\"b\":2}");
  std::remove(path.c_str());
}

#ifndef _WIN32
// Streaming telemetry through a non-syncable target (a pipe, /dev/stdout,
// /dev/null) makes fsync fail with EINVAL; sync() must treat that as
// best-effort, not as a fatal I/O error on an otherwise healthy run.
TEST(JsonlTest, SyncToNonSyncableTargetIsBestEffort) {
  JsonlWriter writer("/dev/null");
  writer.emit("{\"type\":\"probe\"}");
  EXPECT_NO_THROW(writer.sync());
  EXPECT_EQ(writer.lines_written(), 1u);
}
#endif

TEST(JsonlTest, WriterSerializesConcurrentEmitters) {
  const std::string path = temp_path("divlib_jsonl_threads.jsonl");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  {
    JsonlWriter writer(path);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
      pool.emplace_back([&writer, t] {
        for (int i = 0; i < kPerThread; ++i) {
          JsonObject object;
          object.field("thread", static_cast<std::uint64_t>(t))
              .field("i", static_cast<std::uint64_t>(i));
          writer.emit(object.str());
        }
      });
    }
    for (auto& thread : pool) {
      thread.join();
    }
    EXPECT_EQ(writer.lines_written(),
              static_cast<std::uint64_t>(kThreads * kPerThread));
  }
  // Every line must be whole (starts '{', ends '}'): emits never interleave.
  std::ifstream in(path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    ++count;
  }
  EXPECT_EQ(count, static_cast<std::size_t>(kThreads * kPerThread));
  std::remove(path.c_str());
}

// -------------------------------------------------------------- Metrics ---

TEST(MetricsTest, CounterAndGaugeBasics) {
  Counter counter;
  counter.add();
  counter.add(4);
  EXPECT_EQ(counter.value(), 5u);

  Gauge gauge;
  gauge.set(-7);
  gauge.add(3);
  EXPECT_EQ(gauge.value(), -4);
}

TEST(MetricsTest, HistogramBucketsByUpperBoundWithOverflow) {
  FixedHistogram histogram({1.0, 10.0, 100.0});
  histogram.observe(0.5);    // bucket 0 (<= 1)
  histogram.observe(1.0);    // bucket 0
  histogram.observe(5.0);    // bucket 1
  histogram.observe(100.0);  // bucket 2
  histogram.observe(1e6);    // overflow
  EXPECT_EQ(histogram.num_buckets(), 4u);
  EXPECT_EQ(histogram.bucket_count(0), 2u);
  EXPECT_EQ(histogram.bucket_count(1), 1u);
  EXPECT_EQ(histogram.bucket_count(2), 1u);
  EXPECT_EQ(histogram.bucket_count(3), 1u);
  EXPECT_EQ(histogram.total(), 5u);
  EXPECT_DOUBLE_EQ(histogram.sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(MetricsTest, HistogramRejectsBadBounds) {
  EXPECT_THROW(FixedHistogram({}), std::invalid_argument);
  EXPECT_THROW(FixedHistogram({1.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(FixedHistogram({2.0, 1.0}), std::invalid_argument);
}

TEST(MetricsTest, GeometricBoundsGrowByTheFactor) {
  const auto bounds = FixedHistogram::geometric_bounds(2.0, 4.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 2.0);
  EXPECT_DOUBLE_EQ(bounds[1], 8.0);
  EXPECT_DOUBLE_EQ(bounds[2], 32.0);
  EXPECT_DOUBLE_EQ(bounds[3], 128.0);
}

TEST(MetricsTest, RegistryReturnsSameInstrumentForSameName) {
  MetricsRegistry registry;
  Counter& a = registry.counter("hits");
  Counter& b = registry.counter("hits");
  EXPECT_EQ(&a, &b);
  a.add();
  EXPECT_EQ(b.value(), 1u);
}

TEST(MetricsTest, RegistryKindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("x");
  EXPECT_THROW(registry.gauge("x"), std::logic_error);
  EXPECT_THROW(registry.histogram("x", {1.0}), std::logic_error);
}

TEST(MetricsTest, SnapshotReflectsRegistrationOrderAndValues) {
  MetricsRegistry registry;
  registry.counter("c").add(3);
  registry.gauge("g").set(-2);
  registry.histogram("h", {1.0, 2.0}).observe(1.5);
  const auto snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "c");
  EXPECT_EQ(snapshot[0].kind, InstrumentKind::kCounter);
  EXPECT_EQ(snapshot[0].count, 3u);
  EXPECT_EQ(snapshot[0].to_json(), "3");
  EXPECT_EQ(snapshot[1].name, "g");
  EXPECT_EQ(snapshot[1].gauge, -2);
  EXPECT_EQ(snapshot[1].to_json(), "-2");
  EXPECT_EQ(snapshot[2].name, "h");
  EXPECT_EQ(snapshot[2].count, 1u);
  ASSERT_EQ(snapshot[2].buckets.size(), 3u);
  EXPECT_EQ(snapshot[2].buckets[1], 1u);
}

TEST(MetricsTest, ConcurrentUpdatesNeverLoseIncrements) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("work");
  FixedHistogram& histogram =
      registry.histogram("lat", FixedHistogram::geometric_bounds(1.0, 2.0, 8));
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&counter, &histogram] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.add();
        histogram.observe(static_cast<double>(i % 300));
      }
    });
  }
  for (auto& thread : pool) {
    thread.join();
  }
  EXPECT_EQ(counter.value(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(histogram.total(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

// ----------------------------------------------------------- RunMetrics ---

TEST(RunMetricsTest, SampleCapCountsDropsInsteadOfGrowing) {
  RunMetrics metrics;
  metrics.max_samples = 2;
  metrics.record_mode_switch(0, true, 0.5, 10);
  metrics.record_mode_switch(5, false, 0.6, 12);
  metrics.record_mode_switch(9, true, 0.1, 2);
  EXPECT_EQ(metrics.mode_timeline.size(), 2u);
  EXPECT_EQ(metrics.mode_switches_dropped, 1u);
  metrics.record_activity(1, 0.5, 10);
  metrics.record_activity(2, 0.5, 10);
  metrics.record_activity(3, 0.5, 10);
  EXPECT_EQ(metrics.activity.size(), 2u);
  EXPECT_EQ(metrics.activity_dropped, 1u);
}

TEST(RunMetricsTest, ToJsonCarriesTimelineAndTotals) {
  RunMetrics metrics;
  metrics.scheduled_steps = 100;
  metrics.effective_steps = 25;
  metrics.record_mode_switch(0, true, 0.5, 10);
  const std::string json = metrics.to_json();
  EXPECT_NE(json.find("\"scheduled_steps\":100"), std::string::npos);
  EXPECT_NE(json.find("\"effective_ratio\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"mode\":\"jump\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds_total\""), std::string::npos);
}

TEST(RunMetricsTest, NaiveEngineFillsScheduledStepsAndOneSegment) {
  Rng graph_rng(11);
  const Graph graph = make_random_regular(128, 8, graph_rng);
  Rng rng(12);
  OpinionState state(graph, uniform_random_opinions(128, 1, 4, rng));
  DivProcess process(graph, SelectionScheme::kEdge);
  RunMetrics metrics;
  RunOptions options;
  options.max_steps = 1'000'000'000;
  options.metrics = &metrics;
  const RunResult result = run(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(metrics.scheduled_steps, result.steps);
  ASSERT_EQ(metrics.mode_timeline.size(), 1u);
  EXPECT_FALSE(metrics.mode_timeline[0].jump_mode);
  EXPECT_GT(metrics.wall_seconds_total, 0.0);
  EXPECT_EQ(metrics.effective_steps, 0u);  // naive engine cannot tell
}

// The determinism contract: every non-wall field of two identical jump runs
// matches exactly, whatever machine or schedule produced them.
TEST(RunMetricsTest, JumpRunMetricsAreDeterministicInContent) {
  Rng graph_rng(21);
  const Graph graph = make_random_regular(256, 8, graph_rng);
  DivProcess process(graph, SelectionScheme::kEdge);

  const auto one_run = [&](RunMetrics& metrics) {
    Rng rng(22);
    OpinionState state(graph, uniform_random_opinions(256, 1, 5, rng));
    RunOptions options;
    options.max_steps = 1'000'000'000;
    options.metrics = &metrics;
    metrics.activity_stride = 64;
    return run_jump(process, state, rng, options);
  };

  RunMetrics first;
  RunMetrics second;
  const JumpRunResult result_a = one_run(first);
  const JumpRunResult result_b = one_run(second);
  ASSERT_TRUE(result_a.completed);
  ASSERT_EQ(result_a.steps, result_b.steps);

  EXPECT_EQ(first.scheduled_steps, second.scheduled_steps);
  EXPECT_EQ(first.effective_steps, second.effective_steps);
  EXPECT_EQ(first.lazy_steps_skipped, second.lazy_steps_skipped);
  EXPECT_EQ(first.tracker_rebuilds, second.tracker_rebuilds);
  EXPECT_EQ(first.frozen_tail_steps, second.frozen_tail_steps);
  ASSERT_EQ(first.mode_timeline.size(), second.mode_timeline.size());
  for (std::size_t i = 0; i < first.mode_timeline.size(); ++i) {
    EXPECT_EQ(first.mode_timeline[i].step, second.mode_timeline[i].step);
    EXPECT_EQ(first.mode_timeline[i].jump_mode,
              second.mode_timeline[i].jump_mode);
    EXPECT_EQ(first.mode_timeline[i].active_probability,
              second.mode_timeline[i].active_probability);
    EXPECT_EQ(first.mode_timeline[i].discordant_pairs,
              second.mode_timeline[i].discordant_pairs);
  }
  ASSERT_EQ(first.activity.size(), second.activity.size());
  for (std::size_t i = 0; i < first.activity.size(); ++i) {
    EXPECT_EQ(first.activity[i].step, second.activity[i].step);
    EXPECT_EQ(first.activity[i].active_probability,
              second.activity[i].active_probability);
  }
  // Cross-check the totals against the run result itself.
  EXPECT_EQ(first.scheduled_steps, result_a.steps);
  EXPECT_EQ(first.effective_steps, result_a.effective_steps);
  ASSERT_FALSE(first.mode_timeline.empty());
  EXPECT_EQ(first.mode_timeline[0].step, 0u);
  EXPECT_TRUE(first.mode_timeline[0].jump_mode);
  // Timeline entries beyond the first correspond to the counted switches.
  EXPECT_EQ(first.mode_timeline.size() - 1, result_a.mode_switches);
}

// ------------------------------------------------------------ Heartbeat ---

TEST(HeartbeatTest, ManualBeatsCarryReasonAndCounters) {
  BatchProgress progress;
  progress.total.store(10);
  progress.resumed.store(2);
  progress.completed.store(3);
  progress.retried.store(1);
  std::vector<HeartbeatRecord> records;
  {
    Heartbeat heartbeat(
        progress, [&](const HeartbeatRecord& r) { records.push_back(r); },
        std::chrono::milliseconds(0));  // no interval thread
    heartbeat.beat("flush");
    progress.completed.fetch_add(1);
    heartbeat.beat("flush");
  }  // destructor stops and emits "final"
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].seq, 0u);
  EXPECT_EQ(records[0].reason, "flush");
  EXPECT_EQ(records[0].total, 10u);
  EXPECT_EQ(records[0].done, 5u);  // 2 resumed + 3 completed
  EXPECT_EQ(records[0].pending, 5u);
  EXPECT_EQ(records[1].done, 6u);
  EXPECT_EQ(records[2].seq, 2u);
  EXPECT_EQ(records[2].reason, "final");
}

TEST(HeartbeatTest, IntervalThreadEmitsPeriodically) {
  BatchProgress progress;
  progress.total.store(1);
  std::atomic<int> interval_beats{0};
  Heartbeat heartbeat(
      progress,
      [&](const HeartbeatRecord& record) {
        if (record.reason == "interval") {
          interval_beats.fetch_add(1);
        }
      },
      std::chrono::milliseconds(5));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (interval_beats.load() < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  heartbeat.stop();
  EXPECT_GE(interval_beats.load(), 2);
}

TEST(HeartbeatTest, StopIsIdempotentAndEmitsOneFinal) {
  BatchProgress progress;
  int finals = 0;
  Heartbeat heartbeat(
      progress,
      [&](const HeartbeatRecord& record) {
        if (record.reason == "final") {
          ++finals;
        }
      },
      std::chrono::milliseconds(0));
  heartbeat.stop();
  heartbeat.stop();
  EXPECT_EQ(finals, 1);
}

TEST(HeartbeatTest, RecordToJsonMarksWallClockFields) {
  HeartbeatRecord record;
  record.reason = "interval";
  record.total = 4;
  const std::string json = record.to_json();
  EXPECT_NE(json.find("\"reason\":\"interval\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_elapsed_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"wall_per_second\""), std::string::npos);
}

// The Monte-Carlo driver feeds the progress counters: completed counts every
// verdict, retried counts attempts beyond each first, errored counts
// persistent failures.
TEST(HeartbeatTest, IsolatedDriverUpdatesBatchProgress) {
  BatchProgress progress;
  progress.total.store(8);
  MonteCarloOptions options;
  options.num_threads = 2;
  options.max_attempts = 2;
  options.progress = &progress;
  const BatchReport report = run_replicas_isolated_erased(
      8,
      [](std::size_t replica, Rng&) {
        if (replica == 3) {
          throw std::runtime_error("always fails");  // both attempts
        }
      },
      options);
  EXPECT_EQ(report.attempted, 8u);
  EXPECT_EQ(progress.completed.load(), 8u);
  EXPECT_EQ(progress.errored.load(), 1u);
  EXPECT_EQ(progress.retried.load(), 1u);
  EXPECT_EQ(progress.done(), 8u);
}

}  // namespace
}  // namespace divlib
