#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(Theory, WinDistributionFractionalAverage) {
  const auto dist = theory::win_distribution(3.25);
  EXPECT_EQ(dist.low, 3);
  EXPECT_EQ(dist.high, 4);
  EXPECT_NEAR(dist.p_low, 0.75, 1e-12);
  EXPECT_NEAR(dist.p_high, 0.25, 1e-12);
  EXPECT_NEAR(dist.p_low + dist.p_high, 1.0, 1e-12);
}

TEST(Theory, WinDistributionIntegerAverage) {
  const auto dist = theory::win_distribution(5.0);
  EXPECT_EQ(dist.low, 5);
  EXPECT_EQ(dist.high, 5);
  EXPECT_DOUBLE_EQ(dist.p_low, 1.0);
  EXPECT_DOUBLE_EQ(dist.p_high, 0.0);
}

TEST(Theory, WinDistributionNegativeAverage) {
  // c = -1.75, i = floor(c) = -2: p_low = i + 1 - c = 0.75,
  // p_high = c - i = 0.25.
  const auto dist = theory::win_distribution(-1.75);
  EXPECT_EQ(dist.low, -2);
  EXPECT_EQ(dist.high, -1);
  EXPECT_NEAR(dist.p_low, 0.75, 1e-12);
  EXPECT_NEAR(dist.p_high, 0.25, 1e-12);
}

TEST(Theory, RelevantAverageSwitchesOnProcess) {
  const Graph g = make_star(5);  // irregular
  std::vector<Opinion> opinions(5, 0);
  opinions[0] = 8;  // center
  const OpinionState state(g, std::move(opinions));
  EXPECT_DOUBLE_EQ(theory::relevant_average(state, /*vertex_process=*/false), 1.6);
  EXPECT_DOUBLE_EQ(theory::relevant_average(state, /*vertex_process=*/true), 4.0);
}

TEST(Theory, ReductionTimeScaleIsMonotone) {
  const double base = theory::expected_reduction_time_scale(1000, 5, 0.05);
  EXPECT_LT(base, theory::expected_reduction_time_scale(2000, 5, 0.05));
  EXPECT_LT(base, theory::expected_reduction_time_scale(1000, 10, 0.05));
  EXPECT_LT(base, theory::expected_reduction_time_scale(1000, 5, 0.2));
  EXPECT_THROW(theory::expected_reduction_time_scale(1, 5, 0.05),
               std::invalid_argument);
  EXPECT_THROW(theory::expected_reduction_time_scale(1000, 0, 0.05),
               std::invalid_argument);
}

TEST(Theory, ReductionTimeScaleSubQuadraticForExpanders) {
  // With lambda ~ 1/sqrt(d) fixed and k fixed, scale/n^2 -> sqrt(lambda).
  const double lambda = 0.05;
  const double s1 = theory::expected_reduction_time_scale(1000, 5, lambda);
  const double s2 = theory::expected_reduction_time_scale(100000, 5, lambda);
  EXPECT_LT(s2 / (1e5 * 1e5), s1 / (1e3 * 1e3) + 1.0);
}

TEST(Theory, StageTimesMatchEq18) {
  // T1 = ceil(2 n log(1/2eps^2)).
  EXPECT_DOUBLE_EQ(theory::stage_time_T1(100, 0.1),
                   std::ceil(200.0 * std::log(50.0)));
  // T2 = ceil((2n/eps) log(1/2eps^2)).
  EXPECT_DOUBLE_EQ(theory::stage_time_T2(100, 0.1),
                   std::ceil(2000.0 * std::log(50.0)));
  // Tp = ceil(64 n / (sqrt(2) (1-lambda) pi_min)).
  EXPECT_DOUBLE_EQ(theory::stage_time_Tp(100, 0.5, 0.01),
                   std::ceil(6400.0 / (std::sqrt(2.0) * 0.5 * 0.01) / 100.0 * 100.0));
  EXPECT_THROW(theory::stage_time_T1(100, 0.0), std::invalid_argument);
  EXPECT_THROW(theory::stage_time_T2(100, 0.9), std::invalid_argument);
  EXPECT_THROW(theory::stage_time_Tp(100, 1.0, 0.01), std::invalid_argument);
}

TEST(Theory, AzumaTailBound) {
  // Bound is 2 exp(-h^2/2t), clamped to 1.
  EXPECT_DOUBLE_EQ(theory::azuma_tail_bound(0.0, 100.0), 1.0);
  EXPECT_NEAR(theory::azuma_tail_bound(20.0, 100.0), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_LT(theory::azuma_tail_bound(100.0, 100.0), 1e-10);
  // Degenerate t.
  EXPECT_DOUBLE_EQ(theory::azuma_tail_bound(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(theory::azuma_tail_bound(0.0, 0.0), 1.0);
}

TEST(Theory, AzumaBoundIsMonotone) {
  // Use h large enough that the bound is below the clamp at 1.
  EXPECT_GT(theory::azuma_tail_bound(60.0, 1000.0),
            theory::azuma_tail_bound(120.0, 1000.0));
  EXPECT_LT(theory::azuma_tail_bound(60.0, 500.0),
            theory::azuma_tail_bound(60.0, 1000.0));
}

TEST(Theory, Lemma10DecayFactors) {
  EXPECT_DOUBLE_EQ(theory::lemma10_decay_factor_four_plus(100), 1.0 - 1.0 / 200.0);
  EXPECT_DOUBLE_EQ(theory::lemma10_decay_factor_three(100, 0.5),
                   1.0 - 0.5 / 200.0);
  EXPECT_LT(theory::lemma10_decay_factor_three(100, 0.5),
            theory::lemma10_decay_factor_three(100, 0.1));
}

}  // namespace
}  // namespace divlib
