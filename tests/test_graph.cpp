#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace divlib {
namespace {

Graph make_triangle() { return Graph(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(Graph, DefaultIsEmpty) {
  Graph g;
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, BasicProperties) {
  const Graph g = make_triangle();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.total_degree(), 6u);
  for (VertexId v = 0; v < 3; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
  EXPECT_TRUE(g.is_regular());
  EXPECT_TRUE(g.is_connected());
  EXPECT_FALSE(g.has_isolated_vertices());
}

TEST(Graph, NormalizesEdgeOrientation) {
  const Graph g(3, {{2, 0}, {1, 0}, {2, 1}});
  for (const Edge& e : g.edges()) {
    EXPECT_LT(e.u, e.v);
  }
  EXPECT_TRUE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(2, 0));
}

TEST(Graph, RejectsSelfLoops) {
  EXPECT_THROW(Graph(3, {{1, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdges) {
  EXPECT_THROW(Graph(3, {{0, 1}, {1, 0}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{0, 1}, {0, 1}}), std::invalid_argument);
}

TEST(Graph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Graph(3, {{0, 3}}), std::invalid_argument);
  EXPECT_THROW(Graph(3, {{7, 1}}), std::invalid_argument);
}

TEST(Graph, NeighborsAreSortedAndComplete) {
  const Graph g(4, {{0, 3}, {0, 1}, {0, 2}});
  const auto row = g.neighbors(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(row[2], 3u);
  EXPECT_EQ(g.neighbors(1).size(), 1u);
  EXPECT_EQ(g.neighbors(1)[0], 0u);
}

TEST(Graph, HasEdgeNegativeCases) {
  const Graph g = make_triangle();
  EXPECT_FALSE(g.has_edge(0, 0));
  EXPECT_FALSE(g.has_edge(0, 99));
  const Graph path(3, {{0, 1}, {1, 2}});
  EXPECT_FALSE(path.has_edge(0, 2));
}

TEST(Graph, StationaryDistributionSumsToOne) {
  const Graph g(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  const auto pi = g.stationary_distribution();
  double sum = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_DOUBLE_EQ(pi[v], g.stationary(v));
    sum += pi[v];
  }
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

TEST(Graph, StationaryIsDegreeProportional) {
  // Star on 4 vertices: center degree 3, leaves degree 1, 2m = 6.
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_DOUBLE_EQ(g.stationary(0), 0.5);
  EXPECT_DOUBLE_EQ(g.stationary(1), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(g.min_stationary(), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(g.max_stationary(), 0.5);
}

TEST(Graph, DegreeExtremes) {
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.5);
  EXPECT_FALSE(g.is_regular());
}

TEST(Graph, DetectsDisconnection) {
  const Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, DetectsIsolatedVertices) {
  const Graph g(3, {{0, 1}});
  EXPECT_TRUE(g.has_isolated_vertices());
  EXPECT_FALSE(g.is_connected());
}

TEST(Graph, SummaryMentionsCounts) {
  const Graph g = make_triangle();
  const std::string text = g.summary();
  EXPECT_NE(text.find("n=3"), std::string::npos);
  EXPECT_NE(text.find("m=3"), std::string::npos);
}

}  // namespace
}  // namespace divlib
