#include "core/discordance_tracker.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/div_process.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"

namespace divlib {
namespace {

// Brute-force P(one scheduled step selects a discordant pair).
double brute_force_active_probability(const OpinionState& state,
                                      SelectionScheme scheme) {
  const Graph& graph = state.graph();
  double probability = 0.0;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    for (const VertexId w : graph.neighbors(v)) {
      if (state.opinion(v) == state.opinion(w)) {
        continue;
      }
      if (scheme == SelectionScheme::kVertex) {
        probability += 1.0 / (static_cast<double>(graph.num_vertices()) *
                              graph.degree(v));
      } else {
        probability += 1.0 / static_cast<double>(graph.total_degree());
      }
    }
  }
  return probability;
}

TEST(DiscordanceTracker, InitialCountsMatchBruteForce) {
  Rng rng(1);
  const Graph graph = make_connected_random_regular(40, 6, rng);
  OpinionState state(graph, uniform_random_opinions(40, 1, 4, rng));
  const DiscordanceTracker tracker(state, SelectionScheme::kEdge);
  const auto fresh = tracker.recomputed_counts();
  std::uint64_t total = 0;
  for (VertexId v = 0; v < 40; ++v) {
    EXPECT_EQ(tracker.discordance(v), fresh[v]) << "vertex " << v;
    total += fresh[v];
  }
  EXPECT_EQ(tracker.total_discordant_pairs(), total);
}

TEST(DiscordanceTracker, CountsStayExactThroughRandomMoves) {
  Rng rng(2);
  const Graph graph = make_connected_random_regular(32, 4, rng);
  OpinionState state(graph, uniform_random_opinions(32, 1, 5, rng));
  DiscordanceTracker tracker(state, SelectionScheme::kVertex);
  DivProcess process(graph, SelectionScheme::kVertex);
  for (int step = 0; step < 5000; ++step) {
    const SelectedPair pair = select_pair(graph, process.scheme(), rng);
    const Opinion own = state.opinion(pair.updater);
    state.set(pair.updater, DivProcess::updated_opinion(
                                own, state.opinion(pair.observed)));
    tracker.apply_move(pair.updater, own);
  }
  const auto fresh = tracker.recomputed_counts();
  std::uint64_t total = 0;
  for (VertexId v = 0; v < 32; ++v) {
    ASSERT_EQ(tracker.discordance(v), fresh[v]) << "vertex " << v;
    total += fresh[v];
  }
  EXPECT_EQ(tracker.total_discordant_pairs(), total);
}

TEST(DiscordanceTracker, ActiveProbabilityMatchesBruteForceBothSchemes) {
  Rng rng(3);
  // Irregular graph so the two schemes genuinely differ.
  const Graph graph = make_complete_bipartite(5, 9);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 0, 2, rng));
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    const DiscordanceTracker tracker(state, scheme);
    EXPECT_NEAR(tracker.active_probability(),
                brute_force_active_probability(state, scheme), 1e-12);
  }
}

TEST(DiscordanceTracker, SampledPairsAreAlwaysDiscordant) {
  Rng rng(4);
  const Graph graph = make_connected_random_regular(24, 4, rng);
  OpinionState state(graph, uniform_random_opinions(24, 1, 3, rng));
  const DiscordanceTracker tracker(state, SelectionScheme::kEdge);
  for (int i = 0; i < 5000; ++i) {
    const SelectedPair pair = tracker.sample_discordant_pair(rng);
    ASSERT_TRUE(graph.has_edge(pair.updater, pair.observed));
    ASSERT_NE(state.opinion(pair.updater), state.opinion(pair.observed));
  }
}

TEST(DiscordanceTracker, UpdaterMarginalMatchesConditionalLaw) {
  // On a fixed small state, the sampled updater must follow
  // P(v) proportional to disc(v)/d(v) (vertex) or disc(v) (edge).
  Rng rng(5);
  const Graph graph = make_complete_bipartite(3, 5);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 0, 1, rng));
  for (const SelectionScheme scheme :
       {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    const DiscordanceTracker tracker(state, scheme);
    std::vector<double> expected(graph.num_vertices(), 0.0);
    double norm = 0.0;
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      expected[v] = scheme == SelectionScheme::kVertex
                        ? static_cast<double>(tracker.discordance(v)) /
                              graph.degree(v)
                        : static_cast<double>(tracker.discordance(v));
      norm += expected[v];
    }
    constexpr int kSamples = 100000;
    std::vector<int> counts(graph.num_vertices(), 0);
    for (int i = 0; i < kSamples; ++i) {
      ++counts[tracker.sample_discordant_pair(rng).updater];
    }
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      EXPECT_NEAR(static_cast<double>(counts[v]) / kSamples,
                  expected[v] / norm, 0.01)
          << to_string(scheme) << " vertex " << v;
    }
  }
}

TEST(DiscordanceTracker, ConsensusIsFrozenAndUnsampleable) {
  const Graph graph = make_cycle(6);
  OpinionState state(graph, std::vector<Opinion>(6, 2));
  DiscordanceTracker tracker(state, SelectionScheme::kEdge);
  EXPECT_TRUE(tracker.frozen());
  EXPECT_DOUBLE_EQ(tracker.active_probability(), 0.0);
  Rng rng(6);
  EXPECT_THROW(tracker.sample_discordant_pair(rng), std::logic_error);
}

TEST(DiscordanceTracker, RejectsGraphsTheSchemeCannotRun) {
  const Graph isolated(2, {});
  OpinionState state(isolated, {0, 1});
  EXPECT_THROW(DiscordanceTracker(state, SelectionScheme::kEdge),
               std::invalid_argument);
}

}  // namespace
}  // namespace divlib
