#include "engine/stage_log.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/div_process.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(StageLog, NoEventsWithoutEliminations) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 2, 3, 2});
  StageLog log(state);
  log.observe(5, state);
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.range_history(), "[1,3]");
}

TEST(StageLog, RecordsMinAndMaxEliminations) {
  const Graph g = make_cycle(5);
  OpinionState state(g, {1, 2, 3, 4, 5});
  StageLog log(state);
  state.set(4, 4);  // 5 eliminated
  log.observe(10, state);
  state.set(0, 2);  // 1 eliminated
  log.observe(20, state);
  ASSERT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.events()[0].eliminated, 5);
  EXPECT_EQ(log.events()[0].side, StageEvent::Side::kMax);
  EXPECT_EQ(log.events()[0].step, 10u);
  EXPECT_EQ(log.events()[1].eliminated, 1);
  EXPECT_EQ(log.events()[1].side, StageEvent::Side::kMin);
  const std::vector<Opinion> expected{5, 1};
  EXPECT_EQ(log.elimination_order(), expected);
  EXPECT_EQ(log.range_history(), "[1,5] -> [1,4] -> [2,4]");
}

TEST(StageLog, HandlesRangeJumpsOverEmptyValues) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 4, 4, 4});  // values 2, 3 empty
  StageLog log(state);
  state.set(0, 4);  // min jumps 1 -> 4
  log.observe(3, state);
  const std::vector<Opinion> expected{1, 2, 3};
  EXPECT_EQ(log.elimination_order(), expected);
}

TEST(StageLog, PaperWorkedExampleInvariants) {
  // The introduction's example: opinions {1, 2, 5} on a small graph.  In
  // every run: extremes are eliminated irreversibly, the order is a valid
  // outside-in interleaving, and the final stage is two adjacent values
  // (then consensus).
  const Graph g = make_complete(15);
  for (int trial = 0; trial < 25; ++trial) {
    Rng rng(100 + trial);
    OpinionState state(g, opinions_with_counts(15, 1, {5, 5, 0, 0, 5}, rng));
    StageLog log(state);
    DivProcess process(g, SelectionScheme::kEdge);
    std::uint64_t step = 0;
    while (!state.is_consensus() && step < 1'000'000) {
      process.step(state, rng);
      ++step;
      log.observe(step, state);
    }
    ASSERT_TRUE(state.is_consensus());
    // Eliminations of each value happen exactly once...
    const auto order = log.elimination_order();
    const std::set<Opinion> unique(order.begin(), order.end());
    EXPECT_EQ(unique.size(), order.size());
    // ...exactly 4 of the 5 values die, and steps are non-decreasing.
    EXPECT_EQ(order.size(), 4u);
    for (std::size_t i = 1; i < log.events().size(); ++i) {
      EXPECT_LE(log.events()[i - 1].step, log.events()[i].step);
    }
    // The winner is the single surviving value.
    const Opinion winner = state.min_active();
    EXPECT_EQ(std::count(order.begin(), order.end(), winner), 0);
    // The elimination of the extremes is outside-in: among min-side events
    // the values increase; among max-side they decrease.
    Opinion last_min_kill = 0;
    Opinion last_max_kill = 6;
    for (const StageEvent& event : log.events()) {
      if (event.side == StageEvent::Side::kMin) {
        EXPECT_GT(event.eliminated, last_min_kill);
        last_min_kill = event.eliminated;
      } else {
        EXPECT_LT(event.eliminated, last_max_kill);
        last_max_kill = event.eliminated;
      }
    }
  }
}

}  // namespace
}  // namespace divlib
