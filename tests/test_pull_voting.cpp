#include "core/pull_voting.hpp"

#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(PullVoting, NameEncodesScheme) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(PullVoting(g, SelectionScheme::kVertex).name(), "pull/vertex");
  EXPECT_EQ(PullVoting(g, SelectionScheme::kEdge).name(), "pull/edge");
}

TEST(PullVoting, StepCopiesNeighborOpinion) {
  const Graph g = make_complete(3);
  OpinionState state(g, {1, 5, 9});
  PullVoting process(g, SelectionScheme::kVertex);
  Rng rng(1);
  process.step(state, rng);
  // After one step exactly one vertex holds another's previous opinion.
  int matches = 0;
  for (VertexId v = 0; v < 3; ++v) {
    const Opinion o = state.opinion(v);
    matches += (o == 1) + (o == 5) + (o == 9);
  }
  EXPECT_EQ(matches, 3);  // all opinions still from the original set
}

TEST(PullVoting, OnlyExistingOpinionsEverAppear) {
  const Graph g = make_complete(6);
  OpinionState state(g, {1, 1, 4, 4, 9, 9});
  PullVoting process(g, SelectionScheme::kEdge);
  Rng rng(2);
  for (int step = 0; step < 5000; ++step) {
    process.step(state, rng);
    for (VertexId v = 0; v < 6; ++v) {
      const Opinion o = state.opinion(v);
      EXPECT_TRUE(o == 1 || o == 4 || o == 9);
    }
    if (state.is_consensus()) {
      break;
    }
  }
}

TEST(PullVoting, ReachesConsensusOnCompleteGraph) {
  const Graph g = make_complete(8);
  Rng init_rng(3);
  OpinionState state(g, uniform_random_opinions(8, 1, 3, init_rng));
  PullVoting process(g, SelectionScheme::kVertex);
  Rng rng(4);
  RunOptions options;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_TRUE(result.completed);
  ASSERT_TRUE(result.winner.has_value());
}

TEST(PullVoting, TwoOpinionEdgeProcessWinProbabilityMatchesEq3) {
  // Eq. (3): P(1 wins) = N_1/n under the edge process, on any graph.
  // Star graph, 2 of 6 vertices hold opinion 1 -> 1/3.
  const Graph g = make_star(6);
  constexpr int kReplicas = 4000;
  const auto wins = run_replicas<int>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        OpinionState state(g, two_value_opinions(6, 0, 1, 2, rng));
        PullVoting process(g, SelectionScheme::kEdge);
        RunOptions options;
        options.max_steps = 1'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1) == 1 ? 1 : 0;
      },
      {.master_seed = 42});
  int total = 0;
  for (const int w : wins) {
    total += w;
  }
  const double frequency = static_cast<double>(total) / kReplicas;
  EXPECT_NEAR(frequency, 2.0 / 6.0, 0.025);
}

TEST(PullVoting, TwoOpinionVertexProcessIsDegreeWeighted) {
  // Eq. (3): P(1 wins) = d(A_1)/2m under the vertex process.  Put opinion 1
  // on the star center only: d(A_1)/2m = 1/2 even though N_1/n = 1/6.
  const Graph g = make_star(6);
  constexpr int kReplicas = 4000;
  const auto wins = run_replicas<int>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        std::vector<Opinion> opinions(6, 0);
        opinions[0] = 1;
        OpinionState state(g, std::move(opinions));
        PullVoting process(g, SelectionScheme::kVertex);
        RunOptions options;
        options.max_steps = 1'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1) == 1 ? 1 : 0;
      },
      {.master_seed = 43});
  int total = 0;
  for (const int w : wins) {
    total += w;
  }
  const double frequency = static_cast<double>(total) / kReplicas;
  EXPECT_NEAR(frequency, 0.5, 0.03);
}

TEST(PullVoting, TheoryHelpersAgreeWithState) {
  const Graph g = make_star(6);
  std::vector<Opinion> opinions(6, 0);
  opinions[0] = 1;
  const OpinionState state(g, std::move(opinions));
  EXPECT_DOUBLE_EQ(theory::pull_win_probability_edge(state, 1), 1.0 / 6.0);
  EXPECT_DOUBLE_EQ(theory::pull_win_probability_vertex(state, 1), 0.5);
}

}  // namespace
}  // namespace divlib
