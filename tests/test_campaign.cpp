#include "engine/campaign.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/cancel.hpp"
#include "io/atomic_file.hpp"
#include "io/journal.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;

// A task whose payload depends on the replica's RNG stream: any seeding
// mistake (batch-index instead of true-id seeds) shows up as a payload
// mismatch, not just a count mismatch.
std::optional<std::string> rng_payload_task(std::size_t replica, Rng& rng) {
  return "r" + std::to_string(replica) + ":" + std::to_string(rng.next());
}

class CampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("divlib_campaign_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CampaignOptions options(bool resume = false) const {
    CampaignOptions opts;
    opts.directory = dir_.string();
    opts.resume = resume;
    opts.meta = "test-campaign 1\nk=3 seed=42\n";
    opts.mc.master_seed = 42;
    opts.mc.num_threads = 2;
    return opts;
  }

  std::string journal_path() const {
    return (dir_ / "results.journal").string();
  }

  fs::path dir_;
};

TEST_F(CampaignTest, FreshCampaignJournalsEveryReplica) {
  const CampaignResult result = run_campaign(8, rng_payload_task, options());
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.ran, 8u);
  EXPECT_EQ(result.resumed, 0u);
  EXPECT_FALSE(result.cancelled);
  ASSERT_EQ(result.payloads.size(), 8u);
  for (std::size_t r = 0; r < 8; ++r) {
    ASSERT_TRUE(result.payloads[r].has_value()) << "replica " << r;
  }
  const JournalRecovery recovery = read_journal(journal_path());
  EXPECT_FALSE(recovery.torn());
  EXPECT_EQ(recovery.records.size(), 8u);
  // The meta fingerprint was persisted alongside.
  EXPECT_EQ(read_file((dir_ / "campaign.meta").string()), options().meta);
}

TEST_F(CampaignTest, ResumeOfFinishedCampaignRunsNothing) {
  const CampaignResult first = run_campaign(8, rng_payload_task, options());
  const CampaignResult second =
      run_campaign(8, rng_payload_task, options(/*resume=*/true));
  EXPECT_TRUE(second.complete());
  EXPECT_EQ(second.resumed, 8u);
  EXPECT_EQ(second.ran, 0u);
  EXPECT_EQ(second.payloads, first.payloads);
}

TEST_F(CampaignTest, PartialResumeMergesBitIdenticallyWithUninterruptedRun) {
  // Baseline: an uninterrupted campaign in a sibling directory.
  const fs::path baseline_dir = dir_.string() + "_baseline";
  fs::remove_all(baseline_dir);
  CampaignOptions baseline_opts = options();
  baseline_opts.directory = baseline_dir.string();
  const CampaignResult baseline =
      run_campaign(10, rng_payload_task, baseline_opts);
  ASSERT_TRUE(baseline.complete());

  // Simulate a crash that persisted only the even replicas: hand-write the
  // meta and a journal containing their records.
  fs::create_directories(dir_);
  atomic_write_file((dir_ / "campaign.meta").string(), options().meta);
  {
    JournalWriter writer(journal_path());
    for (std::size_t r = 0; r < 10; r += 2) {
      writer.append(encode_campaign_record(r, *baseline.payloads[r]));
    }
  }

  const CampaignResult resumed =
      run_campaign(10, rng_payload_task, options(/*resume=*/true));
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.resumed, 5u);
  EXPECT_EQ(resumed.ran, 5u);  // only the odd replicas re-ran
  // The merged payloads are bit-identical to the uninterrupted run, which
  // requires the re-run replicas to be seeded from their TRUE ids.
  EXPECT_EQ(resumed.payloads, baseline.payloads);
  fs::remove_all(baseline_dir);
}

TEST_F(CampaignTest, TornJournalTailIsRecoveredOnResume) {
  const CampaignResult first = run_campaign(6, rng_payload_task, options());
  ASSERT_TRUE(first.complete());
  // Tear the last record mid-frame, as a crash between write() calls would.
  const auto size = fs::file_size(journal_path());
  fs::resize_file(journal_path(), size - 3);

  const CampaignResult resumed =
      run_campaign(6, rng_payload_task, options(/*resume=*/true));
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.resumed, 5u);  // the torn record was dropped...
  EXPECT_EQ(resumed.ran, 1u);      // ...and its replica re-ran
  EXPECT_EQ(resumed.payloads, first.payloads);
  EXPECT_FALSE(read_journal(journal_path()).torn());
}

TEST_F(CampaignTest, ExistingJournalWithoutResumeFlagThrows) {
  run_campaign(2, rng_payload_task, options());
  EXPECT_THROW(run_campaign(2, rng_payload_task, options(/*resume=*/false)),
               std::runtime_error);
}

TEST_F(CampaignTest, MetaMismatchOnResumeThrows) {
  run_campaign(2, rng_payload_task, options());
  CampaignOptions changed = options(/*resume=*/true);
  changed.meta = "test-campaign 1\nk=4 seed=42\n";
  EXPECT_THROW(run_campaign(2, rng_payload_task, changed), std::runtime_error);
}

TEST_F(CampaignTest, PresetCancelJournalsNothingAndResumeFinishes) {
  CancelToken token;
  token.request();
  CampaignOptions cancelled_opts = options();
  cancelled_opts.mc.cancel = &token;
  const CampaignResult cancelled =
      run_campaign(5, rng_payload_task, cancelled_opts);
  EXPECT_TRUE(cancelled.cancelled);
  EXPECT_FALSE(cancelled.complete());
  EXPECT_EQ(cancelled.ran, 0u);
  EXPECT_EQ(read_journal(journal_path()).records.size(), 0u);

  const CampaignResult resumed =
      run_campaign(5, rng_payload_task, options(/*resume=*/true));
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.ran, 5u);
}

// Regression for the fires-after-last-claim race: a token that fires while
// the FINAL replica is in flight leaves the batch complete.  The driver
// still reports that the token fired (report.cancelled), but the campaign
// is finished -- there is nothing to resume -- so CampaignResult.cancelled
// (documented as "resume to finish the rest") must be false.  The old
// inference (attempted < replicas) combined with a campaign-side workaround
// misclassified this case.
TEST_F(CampaignTest, CancelDuringFinalReplicaLeavesCampaignComplete) {
  CancelToken token;
  CampaignOptions opts = options();
  opts.mc.cancel = &token;
  opts.mc.num_threads = 1;  // sequential claims: replica 4 is the last
  const auto task = [&](std::size_t replica,
                        Rng& rng) -> std::optional<std::string> {
    if (replica == 4) {
      token.request();  // fires after the last slot was claimed
    }
    return rng_payload_task(replica, rng);
  };
  const CampaignResult result = run_campaign(5, task, opts);
  EXPECT_TRUE(result.report.cancelled);  // the token DID fire
  EXPECT_TRUE(result.complete());
  EXPECT_EQ(result.ran, 5u);
  EXPECT_FALSE(result.cancelled);  // nothing left to resume
  EXPECT_EQ(read_journal(journal_path()).records.size(), 5u);
}

// The campaign beats an attached heartbeat at every journal flush, so the
// telemetry stream is always at least as fresh as the last durable replica.
TEST_F(CampaignTest, HeartbeatBeatsOnEveryJournalFlush) {
  BatchProgress progress;
  std::vector<HeartbeatRecord> records;
  std::mutex records_mutex;
  Heartbeat heartbeat(
      progress,
      [&](const HeartbeatRecord& record) {
        const std::lock_guard<std::mutex> lock(records_mutex);
        records.push_back(record);
      },
      std::chrono::milliseconds(0));  // manual beats only
  CampaignOptions opts = options();
  opts.flush_every = 2;
  opts.heartbeat = &heartbeat;
  opts.mc.progress = &progress;
  const CampaignResult result = run_campaign(4, rng_payload_task, opts);
  heartbeat.stop();
  ASSERT_TRUE(result.complete());
  // 4 records with flush_every=2: in-loop flushes after records 2 and 4,
  // plus the unconditional end-of-batch flush, then stop()'s final.
  std::size_t flush_beats = 0;
  for (const HeartbeatRecord& record : records) {
    if (record.reason == "flush") {
      ++flush_beats;
    }
  }
  EXPECT_EQ(flush_beats, 3u);
  ASSERT_FALSE(records.empty());
  EXPECT_EQ(records.back().reason, "final");
  EXPECT_EQ(records.back().total, 4u);
  EXPECT_EQ(records.back().done, 4u);
  // run_campaign seeded the progress totals before any replica ran.
  EXPECT_EQ(progress.total.load(), 4u);
  EXPECT_EQ(progress.completed.load(), 4u);
}

TEST_F(CampaignTest, NulloptTaskResultsAreNotJournaled) {
  // A task that declines replica 3 (the cancelled-drain convention).
  const auto task = [](std::size_t replica,
                       Rng& rng) -> std::optional<std::string> {
    if (replica == 3) {
      return std::nullopt;
    }
    return rng_payload_task(replica, rng);
  };
  const CampaignResult result = run_campaign(5, task, options());
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.ran, 4u);
  EXPECT_FALSE(result.payloads[3].has_value());
  EXPECT_EQ(read_journal(journal_path()).records.size(), 4u);

  const CampaignResult resumed =
      run_campaign(5, rng_payload_task, options(/*resume=*/true));
  EXPECT_TRUE(resumed.complete());
  EXPECT_EQ(resumed.resumed, 4u);
  EXPECT_EQ(resumed.ran, 1u);
}

TEST_F(CampaignTest, PersistentlyFailingReplicaIsReportedNotJournaled) {
  const auto task = [](std::size_t replica,
                       Rng& rng) -> std::optional<std::string> {
    if (replica == 1) {
      throw std::runtime_error("injected fault");
    }
    return rng_payload_task(replica, rng);
  };
  const CampaignResult result = run_campaign(4, task, options());
  EXPECT_FALSE(result.complete());
  EXPECT_FALSE(result.report.ok());
  ASSERT_EQ(result.report.errors.size(), 1u);
  EXPECT_EQ(result.report.errors[0].replica, 1u);
  EXPECT_FALSE(result.payloads[1].has_value());
  EXPECT_EQ(read_journal(journal_path()).records.size(), 3u);
}

TEST(CampaignRecord, EncodeDecodeRoundTrips) {
  const std::string record = encode_campaign_record(42, "completed 17 3 -");
  EXPECT_EQ(record, "42 completed 17 3 -");
  const auto [replica, payload] = decode_campaign_record(record);
  EXPECT_EQ(replica, 42u);
  EXPECT_EQ(payload, "completed 17 3 -");
  // Payloads may themselves contain spaces and be empty.
  EXPECT_EQ(decode_campaign_record(encode_campaign_record(0, "")).second, "");
}

TEST(CampaignRecord, MalformedRecordsThrow) {
  EXPECT_THROW(decode_campaign_record(""), std::invalid_argument);
  EXPECT_THROW(decode_campaign_record("notanumber x"), std::invalid_argument);
  EXPECT_THROW(decode_campaign_record("12"), std::invalid_argument);
}

}  // namespace
}  // namespace divlib
