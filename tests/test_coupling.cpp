#include "core/coupling.hpp"

#include <gtest/gtest.h>

#include "engine/initial_config.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"

namespace divlib {
namespace {

TEST(Coupling, InitializesFromExtremeSets) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 3, 3, 3, 5, 5, 5});
  const CoupledDivPull min_side(state, SelectionScheme::kEdge, CoupledSide::kMin);
  EXPECT_EQ(min_side.tracked_extreme(), 1);
  EXPECT_EQ(min_side.opposite_extreme(), 5);
  EXPECT_EQ(min_side.pull_side_size(), 2u);
  EXPECT_TRUE(min_side.invariant_holds());

  OpinionState state2(g, {1, 1, 3, 3, 3, 5, 5, 5});
  const CoupledDivPull max_side(state2, SelectionScheme::kEdge, CoupledSide::kMax);
  EXPECT_EQ(max_side.tracked_extreme(), 5);
  EXPECT_EQ(max_side.pull_side_size(), 3u);
}

TEST(Coupling, RejectsConsensusStart) {
  const Graph g = make_complete(4);
  OpinionState state(g, {2, 2, 2, 2});
  EXPECT_THROW(
      CoupledDivPull(state, SelectionScheme::kEdge, CoupledSide::kMin),
      std::invalid_argument);
}

class CouplingInvariant
    : public ::testing::TestWithParam<std::tuple<SelectionScheme, CoupledSide>> {
};

TEST_P(CouplingInvariant, Lemma13HoldsForManySteps) {
  const auto [scheme, side] = GetParam();
  Rng graph_rng(1);
  const Graph graphs[] = {make_complete(20), make_cycle(20), make_barbell(10),
                          make_connected_random_regular(20, 4, graph_rng),
                          make_star(20)};
  for (const Graph& g : graphs) {
    Rng rng(42);
    OpinionState state(
        g, uniform_random_opinions(g.num_vertices(), 1, 5, rng));
    if (state.is_consensus()) {
      continue;
    }
    CoupledDivPull coupled(state, scheme, side);
    for (int step = 0; step < 20000; ++step) {
      coupled.step(rng);
      ASSERT_TRUE(coupled.invariant_holds())
          << g.summary() << " step " << step << " scheme "
          << to_string(scheme);
      if (coupled.pull_consensus()) {
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndSides, CouplingInvariant,
    ::testing::Combine(::testing::Values(SelectionScheme::kVertex,
                                         SelectionScheme::kEdge),
                       ::testing::Values(CoupledSide::kMin, CoupledSide::kMax)),
    [](const ::testing::TestParamInfo<std::tuple<SelectionScheme, CoupledSide>>&
           info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             (std::get<1>(info.param) == CoupledSide::kMin ? "min" : "max");
    });

TEST(Coupling, PullExtinctionForcesExtremeExtinction) {
  // Lemma 13's payoff: when B(t) dies, the tracked extreme opinion is gone.
  const Graph g = make_complete(16);
  int observed_extinctions = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Rng rng(1000 + trial);
    OpinionState state(g, uniform_random_opinions(16, 1, 4, rng));
    if (state.is_consensus()) {
      continue;
    }
    const Opinion tracked = state.min_active();
    CoupledDivPull coupled(state, SelectionScheme::kEdge, CoupledSide::kMin);
    for (int step = 0; step < 200000 && !coupled.pull_consensus(); ++step) {
      coupled.step(rng);
    }
    ASSERT_TRUE(coupled.pull_consensus());
    if (coupled.pull_side_size() == 0) {
      ++observed_extinctions;
      EXPECT_EQ(state.count(tracked), 0)
          << "B died but the tracked extreme survived";
    }
  }
  EXPECT_GT(observed_extinctions, 0);
}

TEST(Coupling, StepCountsAdvance) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 1, 1, 2, 2, 3, 3});
  CoupledDivPull coupled(state, SelectionScheme::kVertex, CoupledSide::kMin);
  Rng rng(5);
  for (int step = 0; step < 10; ++step) {
    coupled.step(rng);
  }
  EXPECT_EQ(coupled.steps(), 10u);
}

}  // namespace
}  // namespace divlib
