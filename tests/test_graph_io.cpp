#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(GraphIo, RoundTripsThroughEdgeList) {
  const Graph original = make_cycle(6);
  const std::string text = to_edge_list(original);
  const Graph parsed = graph_from_edge_list(text);
  EXPECT_EQ(parsed.num_vertices(), original.num_vertices());
  ASSERT_EQ(parsed.num_edges(), original.num_edges());
  for (std::size_t i = 0; i < original.num_edges(); ++i) {
    EXPECT_EQ(parsed.edges()[i], original.edges()[i]);
  }
}

TEST(GraphIo, ParsesCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "n 3\n"
      "\n"
      "0 1  # trailing comment\n"
      "1 2\n";
  const Graph g = graph_from_edge_list(text);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(GraphIo, RejectsMissingHeader) {
  EXPECT_THROW(graph_from_edge_list("0 1\n"), std::invalid_argument);
}

TEST(GraphIo, RejectsDuplicateHeader) {
  EXPECT_THROW(graph_from_edge_list("n 3\nn 4\n"), std::invalid_argument);
}

TEST(GraphIo, RejectsMalformedTokens) {
  EXPECT_THROW(graph_from_edge_list("n 3\nzero 1\n"), std::invalid_argument);
  EXPECT_THROW(graph_from_edge_list("n 3\n0\n"), std::invalid_argument);
}

TEST(GraphIo, RejectsInvalidEdges) {
  EXPECT_THROW(graph_from_edge_list("n 3\n0 5\n"), std::invalid_argument);
  EXPECT_THROW(graph_from_edge_list("n 3\n1 1\n"), std::invalid_argument);
}

TEST(GraphIo, EmptyGraphRoundTrips) {
  const Graph g = graph_from_edge_list("n 4\n");
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphIo, DotContainsAllEdges) {
  const Graph g = make_path(3);
  const std::string dot = to_dot(g, "P3");
  EXPECT_NE(dot.find("graph P3 {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1;"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2;"), std::string::npos);
}

TEST(GraphIo, WriteEdgeListFormat) {
  std::ostringstream out;
  write_edge_list(out, make_path(3));
  EXPECT_EQ(out.str(), "n 3\n0 1\n1 2\n");
}

}  // namespace
}  // namespace divlib
