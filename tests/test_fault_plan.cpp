#include "core/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace divlib {
namespace {

TEST(FaultPlan, DefaultPlanIsEmpty) {
  const FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.drop_rate(), 0.0);
  EXPECT_EQ(plan.corrupt_rate(), 0.0);
  EXPECT_TRUE(plan.crashes().empty());
  EXPECT_TRUE(plan.byzantine().empty());
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, BuildersChainAndRecord) {
  FaultPlan plan;
  plan.drop(0.25)
      .corrupt(0.1)
      .crash(3)
      .crash(5, 100, 200)
      .byzantine_fixed(7, 2)
      .byzantine_random(9)
      .fault_seed(123);
  EXPECT_FALSE(plan.empty());
  EXPECT_DOUBLE_EQ(plan.drop_rate(), 0.25);
  EXPECT_DOUBLE_EQ(plan.corrupt_rate(), 0.1);
  EXPECT_EQ(plan.seed(), 123u);
  ASSERT_EQ(plan.crashes().size(), 2u);
  EXPECT_EQ(plan.crashes()[0].vertex, 3u);
  EXPECT_EQ(plan.crashes()[0].start, 0u);
  EXPECT_EQ(plan.crashes()[0].end, kNoRecovery);
  EXPECT_EQ(plan.crashes()[1].vertex, 5u);
  EXPECT_EQ(plan.crashes()[1].start, 100u);
  EXPECT_EQ(plan.crashes()[1].end, 200u);
  ASSERT_EQ(plan.byzantine().size(), 2u);
  EXPECT_EQ(plan.byzantine()[0].vertex, 7u);
  EXPECT_EQ(plan.byzantine()[0].kind, LieKind::kFixed);
  EXPECT_EQ(plan.byzantine()[0].fixed_value, 2);
  EXPECT_EQ(plan.byzantine()[1].kind, LieKind::kRandom);
  EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, RejectsBadRates) {
  FaultPlan plan;
  EXPECT_THROW(plan.drop(-0.01), std::invalid_argument);
  EXPECT_THROW(plan.drop(1.0), std::invalid_argument);
  EXPECT_THROW(plan.corrupt(-0.01), std::invalid_argument);
  EXPECT_THROW(plan.corrupt(1.01), std::invalid_argument);
  EXPECT_NO_THROW(plan.drop(0.999));
  EXPECT_NO_THROW(plan.corrupt(1.0));
}

TEST(FaultPlan, ValidateRejectsEmptyEpisode) {
  FaultPlan empty_window;
  empty_window.crash(0, 100, 100);
  EXPECT_THROW(empty_window.validate(), std::invalid_argument);
  FaultPlan inverted;
  inverted.crash(0, 100, 50);
  EXPECT_THROW(inverted.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsOverlappingEpisodes) {
  FaultPlan plan;
  plan.crash(4, 0, 100).crash(4, 50, 150);
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  // Disjoint episodes on the same vertex are fine (repeated churn).
  FaultPlan churn;
  churn.crash(4, 0, 100).crash(4, 100, 150);
  EXPECT_NO_THROW(churn.validate());
}

TEST(FaultPlan, ValidateRejectsByzantineCrashOverlap) {
  FaultPlan plan;
  plan.crash(2, 0, 10).byzantine_random(2);
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, ValidateRejectsDuplicateByzantine) {
  FaultPlan plan;
  plan.byzantine_random(6).byzantine_fixed(6, 1);
  EXPECT_THROW(plan.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace divlib
