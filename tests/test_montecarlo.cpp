#include "engine/montecarlo.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

namespace divlib {
namespace {

TEST(MonteCarlo, ResolveThreadCountHonorsExplicitValue) {
  EXPECT_EQ(resolve_thread_count({.num_threads = 3}), 3u);
  EXPECT_GE(resolve_thread_count({.num_threads = 0}), 1u);
}

TEST(MonteCarlo, RunsEveryReplicaExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_replica(100);
  run_replicas_erased(
      100,
      [&](std::size_t replica, Rng&) {
        ++calls;
        ++per_replica[replica];
      },
      {.master_seed = 1, .num_threads = 4});
  EXPECT_EQ(calls.load(), 100);
  for (const auto& count : per_replica) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(MonteCarlo, ZeroReplicasIsNoop) {
  int calls = 0;
  run_replicas_erased(0, [&](std::size_t, Rng&) { ++calls; }, {});
  EXPECT_EQ(calls, 0);
}

TEST(MonteCarlo, ResultsAreDeterministicAcrossThreadCounts) {
  const auto collect = [](unsigned threads) {
    return run_replicas<std::uint64_t>(
        64, [](std::size_t, Rng& rng) { return rng.next(); },
        {.master_seed = 99, .num_threads = threads});
  };
  const auto serial = collect(1);
  const auto parallel = collect(8);
  EXPECT_EQ(serial, parallel);
}

TEST(MonteCarlo, ReplicasReceiveIndependentStreams) {
  const auto values = run_replicas<std::uint64_t>(
      256, [](std::size_t, Rng& rng) { return rng.next(); },
      {.master_seed = 7, .num_threads = 4});
  const std::set<std::uint64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), values.size());
}

TEST(MonteCarlo, MasterSeedChangesAllStreams) {
  const auto a = run_replicas<std::uint64_t>(
      16, [](std::size_t, Rng& rng) { return rng.next(); }, {.master_seed = 1});
  const auto b = run_replicas<std::uint64_t>(
      16, [](std::size_t, Rng& rng) { return rng.next(); }, {.master_seed = 2});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i], b[i]);
  }
}

TEST(MonteCarlo, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      run_replicas_erased(
          16,
          [](std::size_t replica, Rng&) {
            if (replica == 7) {
              throw std::runtime_error("boom");
            }
          },
          {.master_seed = 5, .num_threads = 4}),
      std::runtime_error);
}

TEST(MonteCarlo, TypedWrapperPreservesReplicaOrder) {
  const auto values = run_replicas<std::size_t>(
      50, [](std::size_t replica, Rng&) { return replica * 2; },
      {.master_seed = 3, .num_threads = 8});
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], i * 2);
  }
}

TEST(MonteCarlo, LowestReplicaExceptionWinsDeterministically) {
  // Replicas 9 and 33 both throw; whatever the thread schedule, the caller
  // must always observe replica 9's message.
  for (int round = 0; round < 5; ++round) {
    std::string caught;
    try {
      run_replicas_erased(
          64,
          [](std::size_t replica, Rng&) {
            if (replica == 9) {
              throw std::runtime_error("error from replica 9");
            }
            if (replica == 33) {
              throw std::runtime_error("error from replica 33");
            }
          },
          {.master_seed = 5, .num_threads = 8});
      FAIL() << "expected a rethrow";
    } catch (const std::runtime_error& error) {
      caught = error.what();
    }
    EXPECT_EQ(caught, "error from replica 9") << "round " << round;
  }
}

// Regression: a worker that recorded an error used to exit only its OWN
// claim loop, so with one thread the batch stopped at the failure while with
// N threads the surviving workers ran every remaining replica -- the
// executed set depended on the worker count.  The shared stop flag makes all
// workers stop claiming after the first recorded error.  The timing below
// forms a deterministic wave: replicas 0..2 sleep ~250ms while replica 3
// fails after ~10ms, so with 4 threads the flag is set long before any
// worker frees up to claim replica 4 (even badly staggered thread startup
// stays far inside the 250ms window); with 1 thread execution is sequential
// 0, 1, 2, then 3 throws.  Both ways the executed set is exactly {0,1,2,3}.
TEST(MonteCarlo, ErrorStopsNewClaimsForEveryThreadCount) {
  for (const unsigned threads : {1u, 4u}) {
    std::vector<std::atomic<int>> executed(32);
    std::string caught;
    try {
      run_replicas_erased(
          32,
          [&](std::size_t replica, Rng&) {
            ++executed[replica];
            if (replica == 3) {
              std::this_thread::sleep_for(std::chrono::milliseconds(10));
              throw std::runtime_error("error from replica 3");
            }
            if (replica < 3) {
              std::this_thread::sleep_for(std::chrono::milliseconds(250));
            }
          },
          {.master_seed = 5, .num_threads = threads});
      FAIL() << "expected a rethrow (threads=" << threads << ")";
    } catch (const std::runtime_error& error) {
      caught = error.what();
    }
    EXPECT_EQ(caught, "error from replica 3") << "threads " << threads;
    for (std::size_t replica = 0; replica < executed.size(); ++replica) {
      EXPECT_EQ(executed[replica].load(), replica <= 3 ? 1 : 0)
          << "replica " << replica << " with " << threads << " thread(s)";
    }
  }
}

// Regression: cancelled used to be inferred as attempted < replicas, so a
// token that fired between the last claim and the join reported
// cancelled == false and the caller could not tell a clean finish from a
// cancelled one.  The driver now reads the token directly.
TEST(MonteCarlo, CancelAfterLastClaimStillReportsCancelled) {
  CancelToken token;
  MonteCarloOptions options;
  options.num_threads = 2;
  options.cancel = &token;
  const BatchReport report = run_replicas_isolated_erased(
      8,
      [&](std::size_t replica, Rng&) {
        if (replica == 7) {
          // Fires while the LAST replica is in flight: every slot has been
          // claimed, so attempted == replicas when the pool drains.
          token.request();
        }
      },
      options);
  EXPECT_EQ(report.attempted, 8u);
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(report.cancelled);
}

TEST(MonteCarlo, UnfiredTokenReportsNotCancelled) {
  CancelToken token;
  MonteCarloOptions options;
  options.num_threads = 2;
  options.cancel = &token;
  const BatchReport report =
      run_replicas_isolated_erased(8, [](std::size_t, Rng&) {}, options);
  EXPECT_EQ(report.attempted, 8u);
  EXPECT_FALSE(report.cancelled);
}

TEST(MonteCarlo, RetrySeedAttemptZeroMatchesSubstream) {
  EXPECT_EQ(Rng::retry_seed(42, 7, 0), Rng::substream_seed(42, 7));
  const std::uint64_t a0 = Rng::retry_seed(42, 7, 0);
  const std::uint64_t a1 = Rng::retry_seed(42, 7, 1);
  const std::uint64_t a2 = Rng::retry_seed(42, 7, 2);
  EXPECT_NE(a0, a1);
  EXPECT_NE(a1, a2);
  EXPECT_NE(Rng::retry_seed(42, 8, 1), a1);
}

TEST(MonteCarlo, IsolatedMatchesPlainDriverWhenHealthy) {
  const auto task = [](std::size_t, Rng& rng) { return rng.next(); };
  const MonteCarloOptions options{.master_seed = 99, .num_threads = 4};
  const auto plain = run_replicas<std::uint64_t>(64, task, options);
  const auto batch = run_replicas_isolated<std::uint64_t>(64, task, options);
  ASSERT_TRUE(batch.report.ok());
  EXPECT_EQ(batch.report.retries, 0u);
  ASSERT_EQ(batch.results.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    ASSERT_TRUE(batch.results[i].has_value());
    EXPECT_EQ(*batch.results[i], plain[i]);
  }
}

TEST(MonteCarlo, IsolatedDriverSurvivesThrowingReplica) {
  const auto batch = run_replicas_isolated<std::uint64_t>(
      16,
      [](std::size_t replica, Rng& rng) -> std::uint64_t {
        if (replica == 7) {
          throw std::runtime_error("replica 7 is cursed");
        }
        return rng.next();
      },
      {.master_seed = 11, .num_threads = 4, .max_attempts = 2});
  EXPECT_FALSE(batch.report.ok());
  ASSERT_EQ(batch.report.errors.size(), 1u);
  EXPECT_EQ(batch.report.errors[0].replica, 7u);
  EXPECT_EQ(batch.report.errors[0].attempts, 2u);
  EXPECT_EQ(batch.report.errors[0].message, "replica 7 is cursed");
  EXPECT_EQ(batch.report.retries, 1u);  // one retry, then gave up
  for (std::size_t i = 0; i < batch.results.size(); ++i) {
    EXPECT_EQ(batch.results[i].has_value(), i != 7) << "replica " << i;
  }
}

TEST(MonteCarlo, RetriesAreReproducibleFromRetrySeeds) {
  // Replica 5 fails its first two attempts; the surviving value must come
  // from the attempt-2 stream, reproducible offline from retry_seed.
  constexpr std::uint64_t kMaster = 77;
  std::array<std::atomic<unsigned>, 16> attempt_counts{};
  const auto batch = run_replicas_isolated<std::uint64_t>(
      16,
      [&attempt_counts](std::size_t replica, Rng& rng) -> std::uint64_t {
        const unsigned attempt = attempt_counts[replica].fetch_add(1);
        if (replica == 5 && attempt < 2) {
          throw std::runtime_error("flaky");
        }
        return rng.next();
      },
      {.master_seed = kMaster, .num_threads = 4, .max_attempts = 3});
  ASSERT_TRUE(batch.report.ok());
  EXPECT_EQ(batch.report.retries, 2u);
  ASSERT_TRUE(batch.results[5].has_value());
  Rng expected(Rng::retry_seed(kMaster, 5, 2));
  EXPECT_EQ(*batch.results[5], expected.next());
  Rng plain(Rng::substream_seed(kMaster, 3));
  ASSERT_TRUE(batch.results[3].has_value());
  EXPECT_EQ(*batch.results[3], plain.next());
}

// Regression: ReplicaError::attempts is the number of attempts actually
// CONSUMED, not the configured budget.  The isolated driver happens to
// exhaust the budget before recording an error, so the two coincide here --
// but the field's meaning matters to the supervisor, which stops early on
// deterministic failures.  Pin the consumed-count semantics both ways.
TEST(MonteCarlo, ReplicaErrorReportsAttemptsConsumed) {
  std::array<std::atomic<unsigned>, 8> calls{};
  const auto batch = run_replicas_isolated<int>(
      8,
      [&calls](std::size_t replica, Rng&) -> int {
        ++calls[replica];
        if (replica == 2) {
          throw std::runtime_error("always fails");
        }
        if (replica == 5 && calls[5].load() < 2) {
          throw std::runtime_error("fails once");
        }
        return 1;
      },
      {.master_seed = 9, .num_threads = 2, .max_attempts = 3});
  // Success on the first try consumes one call; success after one retry
  // consumes two; neither lands in the error list.
  EXPECT_EQ(calls[0].load(), 1u);
  EXPECT_EQ(calls[5].load(), 2u);
  ASSERT_TRUE(batch.results[5].has_value());
  ASSERT_EQ(batch.report.errors.size(), 1u);
  EXPECT_EQ(batch.report.errors[0].replica, 2u);
  EXPECT_EQ(batch.report.errors[0].attempts, 3u);  // consumed == calls made
  EXPECT_EQ(calls[2].load(), 3u);
}

TEST(MonteCarlo, RetriedReplicaResultIndependentOfOtherReplicasRetries) {
  // Replica 5 retries once in both runs; the set of OTHER replicas that
  // retried differs.  Isolation means replica 5's surviving value may not
  // change -- retries draw from per-(replica, attempt) streams, never from a
  // shared sequence another replica could perturb.
  const auto run_with_flaky =
      [](std::initializer_list<std::size_t> flaky_once) {
        std::array<std::atomic<unsigned>, 16> calls{};
        const std::set<std::size_t> flaky(flaky_once);
        return run_replicas_isolated<std::uint64_t>(
            16,
            [&](std::size_t replica, Rng& rng) -> std::uint64_t {
              if (flaky.count(replica) != 0 &&
                  calls[replica].fetch_add(1) == 0) {
                throw std::runtime_error("flaky");
              }
              return rng.next();
            },
            {.master_seed = 13, .num_threads = 4, .max_attempts = 2});
      };
  const auto only5 = run_with_flaky({5});
  const auto many = run_with_flaky({1, 5, 9, 12});
  ASSERT_TRUE(only5.report.ok());
  ASSERT_TRUE(many.report.ok());
  ASSERT_TRUE(only5.results[5].has_value());
  ASSERT_TRUE(many.results[5].has_value());
  EXPECT_EQ(*only5.results[5], *many.results[5]);
  // And the never-flaky replicas are untouched by anyone's retries.
  for (const std::size_t replica : {0u, 3u, 7u, 15u}) {
    EXPECT_EQ(*only5.results[replica], *many.results[replica])
        << "replica " << replica;
  }
}

TEST(MonteCarlo, IsolatedErrorsSortedByReplicaIndex) {
  const auto batch = run_replicas_isolated<int>(
      32,
      [](std::size_t replica, Rng&) -> int {
        if (replica % 11 == 3) {  // replicas 3, 14, 25
          throw std::runtime_error("bad");
        }
        return 1;
      },
      {.master_seed = 2, .num_threads = 8, .max_attempts = 1});
  ASSERT_EQ(batch.report.errors.size(), 3u);
  EXPECT_EQ(batch.report.errors[0].replica, 3u);
  EXPECT_EQ(batch.report.errors[1].replica, 14u);
  EXPECT_EQ(batch.report.errors[2].replica, 25u);
  EXPECT_EQ(batch.report.retries, 0u);  // max_attempts = 1: no retries
}

}  // namespace
}  // namespace divlib
