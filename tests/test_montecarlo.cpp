#include "engine/montecarlo.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <stdexcept>

namespace divlib {
namespace {

TEST(MonteCarlo, ResolveThreadCountHonorsExplicitValue) {
  EXPECT_EQ(resolve_thread_count({.num_threads = 3}), 3u);
  EXPECT_GE(resolve_thread_count({.num_threads = 0}), 1u);
}

TEST(MonteCarlo, RunsEveryReplicaExactlyOnce) {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_replica(100);
  run_replicas_erased(
      100,
      [&](std::size_t replica, Rng&) {
        ++calls;
        ++per_replica[replica];
      },
      {.master_seed = 1, .num_threads = 4});
  EXPECT_EQ(calls.load(), 100);
  for (const auto& count : per_replica) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(MonteCarlo, ZeroReplicasIsNoop) {
  int calls = 0;
  run_replicas_erased(0, [&](std::size_t, Rng&) { ++calls; }, {});
  EXPECT_EQ(calls, 0);
}

TEST(MonteCarlo, ResultsAreDeterministicAcrossThreadCounts) {
  const auto collect = [](unsigned threads) {
    return run_replicas<std::uint64_t>(
        64, [](std::size_t, Rng& rng) { return rng.next(); },
        {.master_seed = 99, .num_threads = threads});
  };
  const auto serial = collect(1);
  const auto parallel = collect(8);
  EXPECT_EQ(serial, parallel);
}

TEST(MonteCarlo, ReplicasReceiveIndependentStreams) {
  const auto values = run_replicas<std::uint64_t>(
      256, [](std::size_t, Rng& rng) { return rng.next(); },
      {.master_seed = 7, .num_threads = 4});
  const std::set<std::uint64_t> unique(values.begin(), values.end());
  EXPECT_EQ(unique.size(), values.size());
}

TEST(MonteCarlo, MasterSeedChangesAllStreams) {
  const auto a = run_replicas<std::uint64_t>(
      16, [](std::size_t, Rng& rng) { return rng.next(); }, {.master_seed = 1});
  const auto b = run_replicas<std::uint64_t>(
      16, [](std::size_t, Rng& rng) { return rng.next(); }, {.master_seed = 2});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NE(a[i], b[i]);
  }
}

TEST(MonteCarlo, ExceptionsPropagateToCaller) {
  EXPECT_THROW(
      run_replicas_erased(
          16,
          [](std::size_t replica, Rng&) {
            if (replica == 7) {
              throw std::runtime_error("boom");
            }
          },
          {.master_seed = 5, .num_threads = 4}),
      std::runtime_error);
}

TEST(MonteCarlo, TypedWrapperPreservesReplicaOrder) {
  const auto values = run_replicas<std::size_t>(
      50, [](std::size_t replica, Rng&) { return replica * 2; },
      {.master_seed = 3, .num_threads = 8});
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], i * 2);
  }
}

}  // namespace
}  // namespace divlib
