#include "engine/count_trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "core/div_process.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(CountTrace, RejectsZeroStride) {
  const Graph g = make_cycle(3);
  const OpinionState state(g, {1, 2, 3});
  EXPECT_THROW(CountTrace(state, 0), std::invalid_argument);
}

TEST(CountTrace, CapturesRangeAndCounts) {
  const Graph g = make_cycle(5);
  const OpinionState state(g, {2, 2, 3, 5, 5});
  CountTrace trace(state, 10);
  EXPECT_EQ(trace.range_lo(), 2);
  EXPECT_EQ(trace.range_hi(), 5);
  EXPECT_EQ(trace.num_opinions(), 4u);
  trace.record(0, state);
  ASSERT_EQ(trace.num_samples(), 1u);
  EXPECT_EQ(trace.count_at(0, 0), 2);  // opinion 2
  EXPECT_EQ(trace.count_at(0, 1), 1);  // opinion 3
  EXPECT_EQ(trace.count_at(0, 2), 0);  // opinion 4
  EXPECT_EQ(trace.count_at(0, 3), 2);  // opinion 5
  EXPECT_DOUBLE_EQ(trace.fraction_at(0, 0), 0.4);
}

TEST(CountTrace, MaybeRecordHonorsStride) {
  const Graph g = make_cycle(3);
  const OpinionState state(g, {1, 1, 2});
  CountTrace trace(state, 5);
  for (std::uint64_t step = 0; step <= 12; ++step) {
    trace.maybe_record(step, state);
  }
  ASSERT_EQ(trace.num_samples(), 3u);  // 0, 5, 10
  EXPECT_EQ(trace.step_at(2), 10u);
}

TEST(CountTrace, OutOfRangeAccessThrows) {
  const Graph g = make_cycle(3);
  const OpinionState state(g, {1, 1, 2});
  CountTrace trace(state, 1);
  trace.record(0, state);
  EXPECT_THROW(trace.count_at(1, 0), std::out_of_range);
  EXPECT_THROW(trace.count_at(0, 2), std::out_of_range);
}

TEST(CountTrace, CsvFormat) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 1, 2, 3});
  CountTrace trace(state, 1);
  trace.record(0, state);
  state.set(0, 2);
  trace.record(1, state);
  std::ostringstream out;
  trace.write_csv(out);
  EXPECT_EQ(out.str(),
            "step,N_1,N_2,N_3\n"
            "0,2,1,1\n"
            "1,1,2,1\n");
}

TEST(CountTrace, TracksARunConsistently) {
  const Graph g = make_complete(20);
  Rng rng(1);
  OpinionState state(g, {1, 1, 1, 1, 1, 2, 2, 2, 2, 2,
                         3, 3, 3, 3, 3, 4, 4, 4, 4, 4});
  CountTrace trace(state, 1);
  DivProcess process(g, SelectionScheme::kEdge);
  trace.maybe_record(0, state);
  for (std::uint64_t step = 1; step <= 500; ++step) {
    process.step(state, rng);
    trace.maybe_record(step, state);
  }
  ASSERT_EQ(trace.num_samples(), 501u);
  // Row sums always equal n.
  for (std::size_t sample = 0; sample < trace.num_samples(); ++sample) {
    std::int64_t total = 0;
    for (std::size_t column = 0; column < trace.num_opinions(); ++column) {
      total += trace.count_at(sample, column);
    }
    ASSERT_EQ(total, 20);
  }
}

}  // namespace
}  // namespace divlib
