#!/usr/bin/env bash
# Graceful-cancellation drill: SIGINT a checkpointed campaign, require the
# conventional interrupted exit status (130), the resume hint, an intact
# journal, and a clean completion on resume.  Exits 77 (CTest
# SKIP_RETURN_CODE) where the drill cannot run.
set -u

DIVSIM="${1:-}"
if [[ -z "${DIVSIM}" || ! -x "${DIVSIM}" ]]; then
  echo "SKIP: divsim binary not provided or not executable" >&2
  exit 77
fi
if ! kill -0 $$ 2>/dev/null; then
  echo "SKIP: cannot deliver signals in this environment" >&2
  exit 77
fi

WORK="$(mktemp -d)" || exit 77
trap 'rm -rf "${WORK}"' EXIT

ARGS=(run --graph path:1024 --k 9 --stop consensus --max-steps 20000000
      --replicas 24 --seed 11 --threads 2)

"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/ckpt" \
    > "${WORK}/run.out" 2>&1 &
pid=$!
interrupted=0
for _ in $(seq 1 500); do
  if ! kill -0 "${pid}" 2>/dev/null; then
    break  # finished before the interrupt; the drain assertions are vacuous
  fi
  if "${DIVSIM}" journal --dir "${WORK}/ckpt" 2>/dev/null \
      | grep -q '^replica '; then
    kill -INT "${pid}" 2>/dev/null && interrupted=1
    break
  fi
  sleep 0.01
done
wait "${pid}"
rc=$?

if [[ ${interrupted} -eq 1 ]]; then
  if [[ ${rc} -ne 130 ]]; then
    echo "FAIL: interrupted run exited ${rc}, expected 130" >&2
    cat "${WORK}/run.out" >&2
    exit 1
  fi
  if ! grep -q 'resume with: --checkpoint-dir' "${WORK}/run.out"; then
    echo "FAIL: interrupted run printed no resume hint" >&2
    cat "${WORK}/run.out" >&2
    exit 1
  fi
  # A SIGINT drain flushes the journal at a record boundary: never torn.
  if ! "${DIVSIM}" journal --dir "${WORK}/ckpt" > /dev/null; then
    echo "FAIL: journal torn after a graceful drain" >&2
    exit 1
  fi
else
  echo "NOTE: campaign finished before SIGINT landed; checking resume only"
fi

"${DIVSIM}" "${ARGS[@]}" --checkpoint-dir "${WORK}/ckpt" --resume \
    > "${WORK}/resume.out" 2>&1
resume_rc=$?
if [[ ${resume_rc} -ne 0 ]]; then
  echo "FAIL: resume exited ${resume_rc}" >&2
  cat "${WORK}/resume.out" >&2
  exit 1
fi
record_count=$("${DIVSIM}" journal --dir "${WORK}/ckpt" | grep -c '^replica ')
if [[ "${record_count}" -ne 24 ]]; then
  echo "FAIL: expected 24 journaled replicas after resume, found ${record_count}" >&2
  exit 1
fi

echo "OK: SIGINT drained gracefully and resume completed (${record_count} replicas)"
exit 0
