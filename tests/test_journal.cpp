#include "io/journal.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "io/atomic_file.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;

class JournalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("divlib_journal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::create_directories(dir_);
    path_ = (dir_ / "test.journal").string();
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string raw_bytes() const { return read_file(path_); }
  void write_raw(const std::string& bytes) const {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  fs::path dir_;
  std::string path_;
};

TEST_F(JournalTest, RoundTripsRecordsInOrder) {
  {
    JournalWriter writer(path_);
    writer.append("first");
    writer.append("");  // empty payloads are legal
    writer.append(std::string("bin\0ary\xff", 8));
    writer.flush();
    EXPECT_EQ(writer.records_written(), 3u);
  }
  const JournalRecovery recovery = read_journal(path_);
  EXPECT_FALSE(recovery.torn());
  ASSERT_EQ(recovery.records.size(), 3u);
  EXPECT_EQ(recovery.records[0], "first");
  EXPECT_EQ(recovery.records[1], "");
  EXPECT_EQ(recovery.records[2], std::string("bin\0ary\xff", 8));
}

TEST_F(JournalTest, ReopeningAppendsAfterExistingRecords) {
  { JournalWriter(path_).append("one"); }
  { JournalWriter(path_).append("two"); }
  const JournalRecovery recovery = read_journal(path_);
  ASSERT_EQ(recovery.records.size(), 2u);
  EXPECT_EQ(recovery.records[0], "one");
  EXPECT_EQ(recovery.records[1], "two");
}

TEST_F(JournalTest, TornTailRecoversValidPrefix) {
  {
    JournalWriter writer(path_);
    writer.append("alpha");
    writer.append("beta");
    writer.append("gamma");
  }
  const std::string intact = raw_bytes();
  // Chop the final record mid-payload: a crash between write() calls.
  for (std::size_t cut = 1; cut < 13; ++cut) {
    write_raw(intact.substr(0, intact.size() - cut));
    const JournalRecovery recovery = read_journal(path_);
    EXPECT_TRUE(recovery.torn()) << "cut " << cut;
    ASSERT_EQ(recovery.records.size(), 2u) << "cut " << cut;
    EXPECT_EQ(recovery.records[0], "alpha");
    EXPECT_EQ(recovery.records[1], "beta");
  }
}

TEST_F(JournalTest, CorruptTailRecoversValidPrefix) {
  {
    JournalWriter writer(path_);
    writer.append("alpha");
    writer.append("beta");
  }
  std::string bytes = raw_bytes();
  bytes[bytes.size() - 2] ^= 0x40;  // flip a bit inside "beta"'s payload
  write_raw(bytes);
  const JournalRecovery recovery = read_journal(path_);
  EXPECT_TRUE(recovery.torn());
  ASSERT_EQ(recovery.records.size(), 1u);
  EXPECT_EQ(recovery.records[0], "alpha");
}

TEST_F(JournalTest, RecoverTruncatesAndAppendContinues) {
  {
    JournalWriter writer(path_);
    writer.append("alpha");
    writer.append("beta");
  }
  const std::string intact = raw_bytes();
  write_raw(intact.substr(0, intact.size() - 3));  // torn "beta"
  const JournalRecovery recovery = recover_journal(path_);
  EXPECT_EQ(recovery.valid_bytes, recovery.total_bytes);  // truncated in place
  ASSERT_EQ(recovery.records.size(), 1u);
  { JournalWriter(path_).append("beta2"); }
  const JournalRecovery reread = read_journal(path_);
  EXPECT_FALSE(reread.torn());
  ASSERT_EQ(reread.records.size(), 2u);
  EXPECT_EQ(reread.records[0], "alpha");
  EXPECT_EQ(reread.records[1], "beta2");
}

TEST_F(JournalTest, TornMagicRecoversAsEmpty) {
  write_raw("DIVJ");  // crash while writing the magic itself
  const JournalRecovery recovery = read_journal(path_);
  EXPECT_TRUE(recovery.torn());
  EXPECT_TRUE(recovery.records.empty());
  EXPECT_EQ(recovery.valid_bytes, 0u);
  recover_journal(path_);
  { JournalWriter(path_).append("fresh"); }
  // After truncation to zero the writer re-creates the magic.
  const JournalRecovery reread = read_journal(path_);
  ASSERT_EQ(reread.records.size(), 1u);
  EXPECT_EQ(reread.records[0], "fresh");
}

TEST_F(JournalTest, ForeignFileIsRejectedNotTruncated) {
  write_raw("not a journal at all, but longer than eight bytes");
  EXPECT_THROW(read_journal(path_), std::runtime_error);
  EXPECT_THROW(recover_journal(path_), std::runtime_error);
  // The foreign file must be left untouched.
  EXPECT_EQ(raw_bytes(), "not a journal at all, but longer than eight bytes");
}

TEST_F(JournalTest, MissingFileThrows) {
  EXPECT_THROW(read_journal((dir_ / "absent.journal").string()),
               std::runtime_error);
}

TEST(AtomicFile, WriteIsObservedWholeAndOverwrites) {
  const fs::path dir =
      fs::temp_directory_path() / "divlib_atomic_file_test";
  fs::create_directories(dir);
  const std::string path = (dir / "target.txt").string();
  atomic_write_file(path, "first contents");
  EXPECT_EQ(read_file(path), "first contents");
  atomic_write_file(path, "second, longer contents entirely");
  EXPECT_EQ(read_file(path), "second, longer contents entirely");
  // No temporary may linger after a successful write.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  fs::remove_all(dir);
}

TEST(AtomicFile, FailureLeavesDestinationUntouched) {
  const fs::path dir =
      fs::temp_directory_path() / "divlib_atomic_file_fail_test";
  fs::create_directories(dir);
  const std::string path = (dir / "target.txt").string();
  atomic_write_file(path, "precious");
  // Writing under a path whose parent is a *file* cannot create the tmp.
  EXPECT_THROW(atomic_write_file(path + "/child", "x"), std::runtime_error);
  EXPECT_EQ(read_file(path), "precious");
  fs::remove_all(dir);
}

}  // namespace
}  // namespace divlib
