#include "graph/random_graphs.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace divlib {
namespace {

TEST(RandomGraphs, GnpExtremes) {
  Rng rng(1);
  EXPECT_EQ(make_gnp(10, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(make_gnp(10, 1.0, rng).num_edges(), 45u);
}

TEST(RandomGraphs, GnpRejectsInvalidArguments) {
  Rng rng(2);
  EXPECT_THROW(make_gnp(0, 0.5, rng), std::invalid_argument);
  EXPECT_THROW(make_gnp(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_gnp(10, 1.1, rng), std::invalid_argument);
}

TEST(RandomGraphs, GnpEdgeCountConcentrates) {
  Rng rng(3);
  const VertexId n = 200;
  const double p = 0.1;
  const double expected = p * n * (n - 1) / 2.0;
  double total = 0.0;
  constexpr int kTrials = 20;
  for (int t = 0; t < kTrials; ++t) {
    total += static_cast<double>(make_gnp(n, p, rng).num_edges());
  }
  const double mean = total / kTrials;
  EXPECT_NEAR(mean, expected, 5.0 * std::sqrt(expected / kTrials));
}

TEST(RandomGraphs, GnpIsDeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  const Graph ga = make_gnp(50, 0.2, a);
  const Graph gb = make_gnp(50, 0.2, b);
  ASSERT_EQ(ga.num_edges(), gb.num_edges());
  for (std::size_t i = 0; i < ga.num_edges(); ++i) {
    EXPECT_EQ(ga.edges()[i], gb.edges()[i]);
  }
}

TEST(RandomGraphs, ConnectedGnpIsConnected) {
  Rng rng(11);
  const Graph g = make_connected_gnp(100, 0.08, rng);
  EXPECT_TRUE(g.is_connected());
}

TEST(RandomGraphs, RandomRegularHasExactDegrees) {
  Rng rng(13);
  const Graph g = make_random_regular(100, 6, rng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 6u);
  EXPECT_EQ(g.num_edges(), 300u);
}

TEST(RandomGraphs, RandomRegularRejectsOddProduct) {
  Rng rng(17);
  EXPECT_THROW(make_random_regular(5, 3, rng), std::invalid_argument);
  EXPECT_THROW(make_random_regular(10, 10, rng), std::invalid_argument);
  EXPECT_THROW(make_random_regular(1, 1, rng), std::invalid_argument);
}

TEST(RandomGraphs, RandomRegularDegreeOneIsPerfectMatching) {
  Rng rng(19);
  const Graph g = make_random_regular(10, 1, rng);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_TRUE(g.is_regular());
}

TEST(RandomGraphs, ConnectedRandomRegularIsConnected) {
  Rng rng(23);
  for (int trial = 0; trial < 3; ++trial) {
    const Graph g = make_connected_random_regular(64, 4, rng);
    EXPECT_TRUE(g.is_connected());
    EXPECT_TRUE(g.is_regular());
  }
}

TEST(RandomGraphs, WattsStrogatzZeroBetaIsLattice) {
  Rng rng(29);
  const Graph g = make_watts_strogatz(20, 2, 0.0, rng);
  EXPECT_TRUE(g.is_regular());
  EXPECT_EQ(g.min_degree(), 4u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(RandomGraphs, WattsStrogatzPreservesSimplicity) {
  Rng rng(31);
  const Graph g = make_watts_strogatz(100, 3, 0.3, rng);
  EXPECT_EQ(g.num_vertices(), 100u);
  // Rewiring keeps at most the lattice edge count.
  EXPECT_LE(g.num_edges(), 300u);
  EXPECT_GE(g.num_edges(), 250u);  // few edges dropped
}

TEST(RandomGraphs, WattsStrogatzValidatesArguments) {
  Rng rng(37);
  EXPECT_THROW(make_watts_strogatz(5, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW(make_watts_strogatz(10, 2, 1.5, rng), std::invalid_argument);
}

TEST(RandomGraphs, BarabasiAlbertDegreesAndConnectivity) {
  Rng rng(41);
  const Graph g = make_barabasi_albert(200, 3, rng);
  EXPECT_EQ(g.num_vertices(), 200u);
  // Seed clique (6 edges) + 196 newcomers * 3 edges.
  EXPECT_EQ(g.num_edges(), 6u + 196u * 3u);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.min_degree(), 3u);
}

TEST(RandomGraphs, BarabasiAlbertHubsEmerge) {
  Rng rng(43);
  const Graph g = make_barabasi_albert(500, 2, rng);
  // Preferential attachment should produce a hub well above the mean degree.
  EXPECT_GE(g.max_degree(), 4 * static_cast<std::uint32_t>(g.average_degree()));
}

TEST(RandomGraphs, BarabasiAlbertValidatesArguments) {
  Rng rng(47);
  EXPECT_THROW(make_barabasi_albert(3, 0, rng), std::invalid_argument);
  EXPECT_THROW(make_barabasi_albert(2, 2, rng), std::invalid_argument);
}

}  // namespace
}  // namespace divlib
