#include "engine/trace.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(Trace, DisabledByDefault) {
  Trace trace;
  EXPECT_FALSE(trace.enabled());
  const Graph g = make_cycle(3);
  const OpinionState state(g, {1, 2, 3});
  trace.maybe_record(0, state);
  EXPECT_TRUE(trace.empty());
}

TEST(Trace, RecordsOnStrideMultiples) {
  Trace trace(10);
  const Graph g = make_cycle(3);
  const OpinionState state(g, {1, 2, 3});
  for (std::uint64_t step = 0; step <= 35; ++step) {
    trace.maybe_record(step, state);
  }
  ASSERT_EQ(trace.size(), 4u);  // steps 0, 10, 20, 30
  EXPECT_EQ(trace.samples()[0].step, 0u);
  EXPECT_EQ(trace.samples()[3].step, 30u);
}

TEST(Trace, SampleCapturesAggregates) {
  Trace trace(1);
  const Graph g = make_star(4);  // center degree 3, 2m = 6
  const OpinionState state(g, {5, 1, 1, 1});
  trace.record(7, state);
  ASSERT_EQ(trace.size(), 1u);
  const TraceSample& sample = trace.samples()[0];
  EXPECT_EQ(sample.step, 7u);
  EXPECT_EQ(sample.min_active, 1);
  EXPECT_EQ(sample.max_active, 5);
  EXPECT_EQ(sample.num_active, 2);
  EXPECT_EQ(sample.sum, 8);
  EXPECT_DOUBLE_EQ(sample.pi_mass_min, 0.5);
  EXPECT_DOUBLE_EQ(sample.pi_mass_max, 0.5);
  // Z = n * (pi-weighted sum) = 4 * (3/6*5 + 3/6*1) = 12.
  EXPECT_DOUBLE_EQ(sample.z_total, 12.0);
}

TEST(Trace, UnconditionalRecordIgnoresStride) {
  Trace trace(100);
  const Graph g = make_cycle(3);
  const OpinionState state(g, {1, 1, 1});
  trace.record(55, state);
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace.samples()[0].step, 55u);
}

}  // namespace
}  // namespace divlib
