#include "core/best_of_two.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(BestOfTwo, NameIsStable) {
  const Graph g = make_cycle(4);
  EXPECT_EQ(BestOfTwo(g).name(), "best-of-two/vertex");
}

TEST(BestOfTwo, RejectsIsolatedVertices) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(BestOfTwo{g}, std::invalid_argument);
}

TEST(BestOfTwo, ConsensusIsAbsorbing) {
  const Graph g = make_complete(6);
  OpinionState state(g, std::vector<Opinion>(6, 2));
  BestOfTwo process(g);
  Rng rng(1);
  for (int step = 0; step < 500; ++step) {
    process.step(state, rng);
    EXPECT_TRUE(state.is_consensus());
  }
}

TEST(BestOfTwo, OnlyExistingValuesAppear) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 1, 5, 5, 5, 9, 9});
  BestOfTwo process(g);
  Rng rng(2);
  for (int step = 0; step < 3000 && !state.is_consensus(); ++step) {
    process.step(state, rng);
    for (VertexId v = 0; v < 8; ++v) {
      const Opinion o = state.opinion(v);
      EXPECT_TRUE(o == 1 || o == 5 || o == 9);
    }
  }
}

TEST(BestOfTwo, AmplifiesClearMajorities) {
  // 75% majority on a complete graph should win essentially always.
  const Graph g = make_complete(40);
  constexpr int kReplicas = 200;
  const auto wins = run_replicas<int>(
      kReplicas,
      [&g](std::size_t, Rng& rng) {
        OpinionState state(g, two_value_opinions(40, 1, 2, 10, rng));
        BestOfTwo process(g);
        RunOptions options;
        options.max_steps = 2'000'000;
        const RunResult result = run(process, state, rng, options);
        return result.winner.value_or(-1) == 1 ? 1 : 0;
      },
      {.master_seed = 9});
  int majority_wins = 0;
  for (const int w : wins) {
    majority_wins += w;
  }
  EXPECT_GT(majority_wins, kReplicas * 95 / 100);
}

TEST(BestOfTwo, ReachesConsensusOnExpanders) {
  const Graph g = make_complete(30);
  Rng init_rng(3);
  OpinionState state(g, uniform_random_opinions(30, 1, 3, init_rng));
  BestOfTwo process(g);
  Rng rng(4);
  RunOptions options;
  options.max_steps = 2'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_TRUE(result.completed);
}

}  // namespace
}  // namespace divlib
