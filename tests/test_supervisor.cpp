#include "engine/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <ios>
#include <mutex>
#include <numeric>
#include <optional>
#include <string>
#include <system_error>
#include <thread>
#include <vector>

#include "core/cancel.hpp"
#include "engine/campaign.hpp"
#include "engine/montecarlo.hpp"
#include "io/journal.hpp"
#include "obs/metrics.hpp"

namespace divlib {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// Payload depends on the attempt's RNG stream, so any seeding mistake in the
// supervisor (wrong attempt index, speculative twin on a different stream)
// shows up as a payload mismatch, not just a count mismatch.
std::optional<std::string> rng_payload(std::size_t replica, Rng& rng) {
  return "r" + std::to_string(replica) + ":" + std::to_string(rng.next());
}

SupervisedTask healthy_task() {
  return [](std::size_t replica, Rng& rng, const CancelToken&) {
    return rng_payload(replica, rng);
  };
}

std::vector<std::size_t> iota_ids(std::size_t n) {
  std::vector<std::size_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  return ids;
}

// Collects payloads keyed by replica id; safe because on_success is
// serialized under the supervisor's lock.
struct Collector {
  std::vector<std::optional<std::string>> payloads;
  explicit Collector(std::size_t n) : payloads(n) {}
  std::function<void(std::size_t, std::string&&)> sink() {
    return [this](std::size_t replica, std::string&& payload) {
      payloads[replica] = std::move(payload);
    };
  }
};

TEST(SupervisorTest, HealthyBatchMatchesIsolatedDriver) {
  const std::size_t n = 32;
  const MonteCarloOptions mc{.master_seed = 1234, .num_threads = 4};
  std::vector<std::optional<std::string>> expected(n);
  run_replica_set_isolated_erased(
      iota_ids(n),
      [&](std::size_t replica, Rng& rng) {
        expected[replica] = rng_payload(replica, rng);
      },
      mc);

  SupervisorOptions options;
  options.master_seed = 1234;
  options.num_threads = 4;
  Collector got(n);
  const SupervisorReport report =
      run_supervised_set(iota_ids(n), healthy_task(), got.sink(), options);
  EXPECT_EQ(report.replicas, n);
  EXPECT_EQ(report.succeeded, n);
  EXPECT_EQ(report.unfinished, 0u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.retries, 0u);
  EXPECT_FALSE(report.cancelled);
  EXPECT_DOUBLE_EQ(report.success_fraction(), 1.0);
  for (std::size_t replica = 0; replica < n; ++replica) {
    ASSERT_TRUE(got.payloads[replica].has_value()) << "replica " << replica;
    EXPECT_EQ(*got.payloads[replica], *expected[replica])
        << "replica " << replica;
  }
}

TEST(SupervisorTest, EmptyBatchIsNoop) {
  Collector got(0);
  const SupervisorReport report =
      run_supervised_set({}, healthy_task(), got.sink(), {});
  EXPECT_EQ(report.replicas, 0u);
  EXPECT_DOUBLE_EQ(report.success_fraction(), 1.0);
}

TEST(SupervisorTest, ClassifyFailureTaxonomy) {
  EXPECT_EQ(classify_failure(std::bad_alloc{}), FailureClass::kResource);
  EXPECT_EQ(classify_failure(std::system_error(
                std::make_error_code(std::errc::io_error))),
            FailureClass::kResource);
  EXPECT_EQ(classify_failure(std::ios_base::failure("disk")),
            FailureClass::kResource);
  EXPECT_EQ(classify_failure(std::logic_error("bug")),
            FailureClass::kDeterministic);
  EXPECT_EQ(classify_failure(std::out_of_range("index")),
            FailureClass::kDeterministic);
  EXPECT_EQ(classify_failure(std::runtime_error("weather")),
            FailureClass::kTransient);
  EXPECT_EQ(classify_failure(std::exception{}), FailureClass::kTransient);
}

TEST(SupervisorTest, FailureClassNamesRoundTrip) {
  for (const FailureClass failure :
       {FailureClass::kTransient, FailureClass::kResource,
        FailureClass::kDeterministic}) {
    EXPECT_EQ(parse_failure_class(to_string(failure)), failure);
  }
  EXPECT_THROW(parse_failure_class("flaky"), std::invalid_argument);
}

TEST(SupervisorTest, TransientFailureRetriesOnFreshSeedStream) {
  constexpr std::uint64_t kMaster = 77;
  std::atomic<unsigned> executions{0};
  SupervisorOptions options;
  options.master_seed = kMaster;
  options.num_threads = 2;
  options.max_attempts = 3;
  options.backoff_base = 1ms;  // keep the test fast
  std::vector<SupervisionEvent> events;
  options.on_event = [&](const SupervisionEvent& event) {
    events.push_back(event);
  };
  Collector got(4);
  const SupervisorReport report = run_supervised_set(
      iota_ids(4),
      [&](std::size_t replica, Rng& rng,
          const CancelToken&) -> std::optional<std::string> {
        if (replica == 2 && executions.fetch_add(1) == 0) {
          throw std::runtime_error("cosmic ray");
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 4u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_GE(report.backoff_wait_ms, 0.0);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, SupervisionEvent::Kind::kRetry);
  EXPECT_EQ(events[0].replica, 2u);
  EXPECT_EQ(events[0].attempt, 1u);
  EXPECT_EQ(events[0].failure, FailureClass::kTransient);
  EXPECT_EQ(events[0].detail, "cosmic ray");
  // The surviving payload must come from the attempt-1 stream.
  Rng expected(Rng::retry_seed(kMaster, 2, 1));
  ASSERT_TRUE(got.payloads[2].has_value());
  EXPECT_EQ(*got.payloads[2], "r2:" + std::to_string(expected.next()));
}

TEST(SupervisorTest, DeterministicFailureFailsFastWithoutRetries) {
  SupervisorOptions options;
  options.num_threads = 2;
  options.max_attempts = 5;  // budget exists but must not be spent
  std::vector<SupervisionEvent> events;
  options.on_event = [&](const SupervisionEvent& event) {
    events.push_back(event);
  };
  Collector got(4);
  const SupervisorReport report = run_supervised_set(
      iota_ids(4),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 1) {
          throw std::logic_error("assertion failed");
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 3u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.fail_fasts, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].replica, 1u);
  EXPECT_EQ(report.quarantined[0].attempts, 1u);  // consumed, not budget
  EXPECT_EQ(report.quarantined[0].failure, FailureClass::kDeterministic);
  EXPECT_EQ(report.quarantined[0].message, "assertion failed");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, SupervisionEvent::Kind::kFailFast);
  EXPECT_EQ(events[1].kind, SupervisionEvent::Kind::kQuarantine);
  EXPECT_EQ(events[1].attempt, 1u);
}

TEST(SupervisorTest, ExhaustedBudgetQuarantinesWithConsumedAttempts) {
  SupervisorOptions options;
  options.num_threads = 2;
  options.max_attempts = 3;
  options.backoff_base = 0ms;
  MetricsRegistry registry;
  options.metrics = &registry;
  Collector got(3);
  const SupervisorReport report = run_supervised_set(
      iota_ids(3),
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 0) {
          throw std::runtime_error("always raining");
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 2u);
  EXPECT_EQ(report.retries, 2u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].replica, 0u);
  EXPECT_EQ(report.quarantined[0].attempts, 3u);
  EXPECT_EQ(report.quarantined[0].failure, FailureClass::kTransient);
  EXPECT_EQ(registry.counter("supervisor_retries").value(), 2u);
  EXPECT_EQ(registry.counter("supervisor_quarantines").value(), 1u);
}

TEST(SupervisorTest, CustomClassifierOverridesTaxonomy) {
  SupervisorOptions options;
  options.num_threads = 1;
  options.max_attempts = 4;
  options.classify = [](const std::exception&) {
    return FailureClass::kDeterministic;  // everything fails fast
  };
  Collector got(1);
  const SupervisorReport report = run_supervised_set(
      iota_ids(1),
      [](std::size_t, Rng&,
         const CancelToken&) -> std::optional<std::string> {
        throw std::runtime_error("would normally retry");
      },
      got.sink(), options);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_EQ(report.fail_fasts, 1u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].attempts, 1u);
}

TEST(SupervisorTest, DeadlineKillsHangingAttemptThenRetries) {
  // Replica 1's FIRST execution hangs until its lease token fires; the
  // supervisor must kill it at the deadline, classify the kill as transient,
  // and retry on the attempt-1 stream, which succeeds instantly.
  constexpr std::uint64_t kMaster = 55;
  std::atomic<unsigned> hangs{0};
  SupervisorOptions options;
  options.master_seed = kMaster;
  options.num_threads = 2;
  options.max_attempts = 2;
  options.deadline = 50ms;
  options.backoff_base = 1ms;
  std::vector<SupervisionEvent::Kind> kinds;
  options.on_event = [&](const SupervisionEvent& event) {
    kinds.push_back(event.kind);
  };
  Collector got(3);
  const SupervisorReport report = run_supervised_set(
      iota_ids(3),
      [&](std::size_t replica, Rng& rng,
          const CancelToken& cancel) -> std::optional<std::string> {
        if (replica == 1 && hangs.fetch_add(1) == 0) {
          while (!cancel.requested()) {
            std::this_thread::sleep_for(1ms);
          }
          EXPECT_EQ(cancel.reason(), CancelReason::kDeadline);
          return std::nullopt;  // drained, engine-style
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 3u);
  EXPECT_EQ(report.deadline_kills, 1u);
  EXPECT_EQ(report.retries, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  ASSERT_EQ(kinds.size(), 2u);
  EXPECT_EQ(kinds[0], SupervisionEvent::Kind::kDeadlineKill);
  EXPECT_EQ(kinds[1], SupervisionEvent::Kind::kRetry);
  Rng expected(Rng::retry_seed(kMaster, 1, 1));
  ASSERT_TRUE(got.payloads[1].has_value());
  EXPECT_EQ(*got.payloads[1], "r1:" + std::to_string(expected.next()));
}

TEST(SupervisorTest, PerpetuallyHangingReplicaIsQuarantined) {
  SupervisorOptions options;
  options.num_threads = 2;
  options.max_attempts = 2;
  options.deadline = 30ms;
  options.backoff_base = 1ms;
  Collector got(2);
  const SupervisorReport report = run_supervised_set(
      iota_ids(2),
      [](std::size_t replica, Rng& rng,
         const CancelToken& cancel) -> std::optional<std::string> {
        if (replica == 0) {
          while (!cancel.requested()) {
            std::this_thread::sleep_for(1ms);
          }
          return std::nullopt;
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 1u);
  EXPECT_EQ(report.deadline_kills, 2u);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0].replica, 0u);
  EXPECT_EQ(report.quarantined[0].attempts, 2u);
}

TEST(SupervisorTest, BackoffDelayIsDeterministicJitteredAndCapped) {
  SupervisorOptions options;
  options.master_seed = 99;
  options.backoff_base = 100ms;
  options.backoff_cap = 1000ms;
  EXPECT_EQ(backoff_delay(options, 4, 0).count(), 0);
  for (unsigned attempt = 1; attempt <= 8; ++attempt) {
    const auto delay = backoff_delay(options, 4, attempt);
    EXPECT_EQ(delay, backoff_delay(options, 4, attempt)) << attempt;
    const double nominal = 100.0 * static_cast<double>(1u << (attempt - 1));
    const double lo = std::min(0.5 * nominal, 1000.0);
    EXPECT_GE(static_cast<double>(delay.count()), lo - 1.0) << attempt;
    EXPECT_LE(delay.count(), 1000) << attempt;
  }
  // Different replicas jitter differently (decorrelated thundering herd).
  bool any_differ = false;
  for (std::size_t replica = 0; replica < 8 && !any_differ; ++replica) {
    any_differ = backoff_delay(options, replica, 1) !=
                 backoff_delay(options, replica + 8, 1);
  }
  EXPECT_TRUE(any_differ);
  options.backoff_base = 0ms;
  EXPECT_EQ(backoff_delay(options, 4, 3).count(), 0);
}

TEST(SupervisorTest, StragglerSpeculationFirstFinisherWins) {
  // Replica 5's FIRST execution crawls (sleeps until superseded or 5s); the
  // other replicas establish a fast median, so the monitor launches a twin
  // on the same (replica, attempt) seed and the twin's payload wins.  The
  // crawling instance exits early once its token fires kSuperseded.
  constexpr std::uint64_t kMaster = 31;
  std::atomic<unsigned> slow_execs{0};
  SupervisorOptions options;
  options.master_seed = kMaster;
  options.num_threads = 4;
  options.straggler_factor = 3.0;
  options.straggler_warmup = 3;
  Collector got(8);
  const SupervisorReport report = run_supervised_set(
      iota_ids(8),
      [&](std::size_t replica, Rng& rng,
          const CancelToken& cancel) -> std::optional<std::string> {
        auto payload = rng_payload(replica, rng);
        if (replica == 5 && slow_execs.fetch_add(1) == 0) {
          for (int i = 0; i < 5000 && !cancel.requested(); ++i) {
            std::this_thread::sleep_for(1ms);
          }
          if (cancel.requested()) {
            EXPECT_EQ(cancel.reason(), CancelReason::kSuperseded);
            return std::nullopt;
          }
        }
        return payload;
      },
      got.sink(), options);
  EXPECT_EQ(report.succeeded, 8u);
  EXPECT_GE(report.speculative_launches, 1u);
  EXPECT_GE(report.speculative_wins, 1u);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_EQ(report.retries, 0u);  // speculation is not a retry
  // Same attempt-0 stream regardless of which instance won.
  Rng expected(Rng::retry_seed(kMaster, 5, 0));
  ASSERT_TRUE(got.payloads[5].has_value());
  EXPECT_EQ(*got.payloads[5], "r5:" + std::to_string(expected.next()));
}

TEST(SupervisorTest, PresetCancelRunsNothing) {
  CancelToken token;
  token.request();
  SupervisorOptions options;
  options.cancel = &token;
  std::atomic<int> calls{0};
  Collector got(6);
  const SupervisorReport report = run_supervised_set(
      iota_ids(6),
      [&](std::size_t, Rng&, const CancelToken&) -> std::optional<std::string> {
        ++calls;
        return "x";
      },
      got.sink(), options);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.unfinished, 6u);
  EXPECT_EQ(report.succeeded, 0u);
}

TEST(SupervisorTest, MidBatchCancelDrainsAndMarksRemainingUnfinished) {
  CancelToken token;
  SupervisorOptions options;
  options.num_threads = 2;
  options.cancel = &token;
  Collector got(16);
  const SupervisorReport report = run_supervised_set(
      iota_ids(16),
      [&](std::size_t replica, Rng& rng,
          const CancelToken& cancel) -> std::optional<std::string> {
        if (replica == 1) {
          token.request();  // operator hits Ctrl-C while work is in flight
        }
        if (replica >= 2) {
          // Later claims (if any slip through before the monitor reacts)
          // drain cooperatively like an engine would.
          for (int i = 0; i < 1000 && !cancel.requested(); ++i) {
            std::this_thread::sleep_for(1ms);
          }
          if (cancel.requested()) {
            return std::nullopt;
          }
        }
        return rng_payload(replica, rng);
      },
      got.sink(), options);
  EXPECT_TRUE(report.cancelled);
  EXPECT_EQ(report.succeeded + report.unfinished, 16u);
  EXPECT_GE(report.unfinished, 1u);
  EXPECT_TRUE(report.quarantined.empty());
}

TEST(SupervisorTest, EventJsonCarriesAllFields) {
  SupervisionEvent event;
  event.kind = SupervisionEvent::Kind::kRetry;
  event.replica = 17;
  event.attempt = 2;
  event.failure = FailureClass::kResource;
  event.backoff_ms = 150.5;
  event.detail = "bad \"alloc\"";
  const std::string json = event.to_json();
  EXPECT_NE(json.find("\"kind\":\"retry\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"replica\":17"), std::string::npos) << json;
  EXPECT_NE(json.find("\"attempt\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"failure\":\"resource\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"backoff_ms\":"), std::string::npos) << json;
  EXPECT_NE(json.find("bad \\\"alloc\\\""), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Supervised campaigns: quarantine journaling, resume, quorum grading.

class SupervisedCampaignTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("divlib_supervised_campaign_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  CampaignOptions options(bool resume = false) const {
    CampaignOptions opts;
    opts.directory = dir_.string();
    opts.resume = resume;
    opts.meta = "supervised-campaign 1\nk=3 seed=42\n";
    return opts;
  }

  fs::path dir_;
};

TEST(SupervisedCampaignRecord, QuarantineCodecRoundTrips) {
  const QuarantineRecord record{.replica = 12,
                               .attempts = 3,
                               .failure = FailureClass::kResource,
                               .message = "std::bad_alloc at step 7"};
  const std::string encoded = encode_quarantine_record(record);
  EXPECT_TRUE(is_quarantine_record(encoded));
  EXPECT_FALSE(is_quarantine_record("12 some payload"));
  const QuarantineRecord decoded = decode_quarantine_record(encoded);
  EXPECT_EQ(decoded.replica, 12u);
  EXPECT_EQ(decoded.attempts, 3u);
  EXPECT_EQ(decoded.failure, FailureClass::kResource);
  EXPECT_EQ(decoded.message, "std::bad_alloc at step 7");
  // Empty message round-trips too.
  const QuarantineRecord bare =
      decode_quarantine_record(encode_quarantine_record(
          {.replica = 0, .attempts = 1, .failure = FailureClass::kTransient}));
  EXPECT_EQ(bare.message, "");
}

TEST(SupervisedCampaignRecord, MalformedQuarantineRecordsThrow) {
  EXPECT_THROW(decode_quarantine_record("12 payload"), std::invalid_argument);
  EXPECT_THROW(decode_quarantine_record("quarantine "), std::invalid_argument);
  EXPECT_THROW(decode_quarantine_record("quarantine x transient 1"),
               std::invalid_argument);
  EXPECT_THROW(decode_quarantine_record("quarantine 3 flaky 1"),
               std::invalid_argument);
  // Pre-supervision readers fail loudly on the non-numeric prefix.
  EXPECT_THROW(decode_campaign_record("quarantine 3 transient 1 boom"),
               std::invalid_argument);
}

TEST_F(SupervisedCampaignTest, KillDrill) {
  // The acceptance drill: one replica hangs forever, one throws
  // deterministically.  The campaign must complete kDegraded with exactly
  // those ids quarantined, every other replica bit-identical to an
  // UNSUPERVISED campaign with the same master seed, and a resume must skip
  // the quarantined ids without re-executing anything.
  constexpr std::size_t kReplicas = 8;
  constexpr std::uint64_t kMaster = 42;
  const SupervisedTask drill_task =
      [](std::size_t replica, Rng& rng,
         const CancelToken& cancel) -> std::optional<std::string> {
    if (replica == 3) {
      while (!cancel.requested()) {
        std::this_thread::sleep_for(1ms);
      }
      return std::nullopt;  // hanging replica: only a deadline stops it
    }
    if (replica == 5) {
      throw std::logic_error("replica 5 divides by zero");
    }
    return rng_payload(replica, rng);
  };
  SupervisorOptions supervision;
  supervision.master_seed = kMaster;
  supervision.num_threads = 2;
  supervision.max_attempts = 2;
  supervision.deadline = 40ms;
  supervision.backoff_base = 1ms;
  supervision.min_success_fraction = 0.7;  // 6/8 = 0.75 meets the quorum

  const SupervisedCampaignResult outcome =
      run_supervised_campaign(kReplicas, drill_task, options(), supervision);
  EXPECT_EQ(outcome.status, CampaignStatus::kDegraded);
  EXPECT_EQ(outcome.ran, 6u);
  EXPECT_EQ(outcome.resumed, 0u);
  ASSERT_EQ(outcome.quarantined.size(), 2u);
  EXPECT_EQ(outcome.quarantined[0].replica, 3u);
  EXPECT_EQ(outcome.quarantined[0].failure, FailureClass::kTransient);
  EXPECT_EQ(outcome.quarantined[0].attempts, 2u);
  EXPECT_EQ(outcome.quarantined[1].replica, 5u);
  EXPECT_EQ(outcome.quarantined[1].failure, FailureClass::kDeterministic);
  EXPECT_EQ(outcome.quarantined[1].attempts, 1u);
  EXPECT_FALSE(outcome.payloads[3].has_value());
  EXPECT_FALSE(outcome.payloads[5].has_value());

  // Healthy replicas match an unsupervised sibling campaign bit for bit.
  const fs::path sibling = dir_.string() + ".unsupervised";
  fs::remove_all(sibling);
  CampaignOptions plain_options = options();
  plain_options.directory = sibling.string();
  plain_options.mc.master_seed = kMaster;
  plain_options.mc.num_threads = 2;
  const CampaignResult plain = run_campaign(
      kReplicas,
      [](std::size_t replica, Rng& rng) { return rng_payload(replica, rng); },
      plain_options);
  fs::remove_all(sibling);
  for (const std::size_t replica : {0u, 1u, 2u, 4u, 6u, 7u}) {
    ASSERT_TRUE(outcome.payloads[replica].has_value()) << replica;
    EXPECT_EQ(*outcome.payloads[replica], *plain.payloads[replica])
        << "replica " << replica;
  }

  // Resume: nothing left to run, quarantined ids are skipped, the task must
  // never be invoked.
  const SupervisedCampaignResult resumed = run_supervised_campaign(
      kReplicas,
      [](std::size_t replica, Rng&,
         const CancelToken&) -> std::optional<std::string> {
        ADD_FAILURE() << "resume re-executed replica " << replica;
        return std::nullopt;
      },
      options(/*resume=*/true), supervision);
  EXPECT_EQ(resumed.status, CampaignStatus::kDegraded);
  EXPECT_EQ(resumed.resumed, 6u);
  EXPECT_EQ(resumed.ran, 0u);
  ASSERT_EQ(resumed.quarantined.size(), 2u);
  EXPECT_EQ(resumed.quarantined[0].replica, 3u);
  EXPECT_EQ(resumed.quarantined[1].replica, 5u);

  // An unsupervised resume of the same directory refuses the quarantines.
  try {
    run_campaign(
        kReplicas,
        [](std::size_t replica, Rng& rng) { return rng_payload(replica, rng); },
        options(/*resume=*/true));
    FAIL() << "expected run_campaign to refuse quarantine records";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("quarantine"), std::string::npos)
        << error.what();
  }
}

TEST_F(SupervisedCampaignTest, QuorumMissGradesFailed) {
  SupervisorOptions supervision;
  supervision.num_threads = 2;
  supervision.min_success_fraction = 0.9;  // 3/4 = 0.75 misses it
  const SupervisedCampaignResult outcome = run_supervised_campaign(
      4,
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 2) {
          throw std::logic_error("poison");
        }
        return rng_payload(replica, rng);
      },
      options(), supervision);
  EXPECT_EQ(outcome.status, CampaignStatus::kFailed);
  ASSERT_EQ(outcome.quarantined.size(), 1u);
  EXPECT_EQ(outcome.quarantined[0].replica, 2u);
}

TEST_F(SupervisedCampaignTest, QuarantineIsJournaledImmediately) {
  // Flush cadence is deliberately huge: payloads may ride the cadence, but
  // quarantines must be durable the moment they are decided.
  CampaignOptions opts = options();
  opts.flush_every = 1000;
  SupervisorOptions supervision;
  supervision.num_threads = 1;
  supervision.min_success_fraction = 0.0;
  const SupervisedCampaignResult outcome = run_supervised_campaign(
      3,
      [](std::size_t replica, Rng& rng,
         const CancelToken&) -> std::optional<std::string> {
        if (replica == 1) {
          throw std::logic_error("poison");
        }
        return rng_payload(replica, rng);
      },
      opts, supervision);
  EXPECT_EQ(outcome.status, CampaignStatus::kDegraded);
  const JournalRecovery recovery =
      read_journal((dir_ / "results.journal").string());
  bool found = false;
  for (const std::string& record : recovery.records) {
    found = found || is_quarantine_record(record);
  }
  EXPECT_TRUE(found) << "quarantine record missing from the journal";
}

TEST_F(SupervisedCampaignTest, CancelLeavesResumableWorkAndStatusCancelled) {
  CancelToken token;
  token.request();
  SupervisorOptions supervision;
  supervision.cancel = &token;
  const SupervisedCampaignResult outcome =
      run_supervised_campaign(4, healthy_task(), options(), supervision);
  EXPECT_EQ(outcome.status, CampaignStatus::kCancelled);
  EXPECT_EQ(outcome.ran, 0u);
  EXPECT_TRUE(outcome.report.cancelled);
}

TEST_F(SupervisedCampaignTest, CompleteCampaignGradesComplete) {
  SupervisorOptions supervision;
  supervision.num_threads = 2;
  const SupervisedCampaignResult outcome =
      run_supervised_campaign(6, healthy_task(), options(), supervision);
  EXPECT_EQ(outcome.status, CampaignStatus::kComplete);
  EXPECT_TRUE(outcome.complete());
  EXPECT_EQ(outcome.ran, 6u);
  EXPECT_TRUE(outcome.quarantined.empty());
}

TEST(SupervisedCampaignRecord, CampaignStatusNames) {
  EXPECT_STREQ(to_string(CampaignStatus::kComplete), "complete");
  EXPECT_STREQ(to_string(CampaignStatus::kDegraded), "degraded");
  EXPECT_STREQ(to_string(CampaignStatus::kFailed), "failed");
  EXPECT_STREQ(to_string(CampaignStatus::kCancelled), "cancelled");
}

}  // namespace
}  // namespace divlib
