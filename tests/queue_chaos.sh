#!/usr/bin/env bash
# Coordinator-kill chaos drill for the durable campaign queue, two phases:
#
#   1. Submit two campaigns, SIGKILL the `divsim queue run` coordinator at an
#      arbitrary point mid-campaign, and assert: queue.journal still replays
#      (status works, torn tail or not), the interrupted campaign is re-leased
#      by a second coordinator once the dead lease expires, the resumed
#      campaign finishes from its own checkpoint, and every replica of the
#      interrupted campaign is bit-identical to an undisturbed baseline.
#   2. Submit a process-isolated campaign with a hair-trigger breaker, SIGKILL
#      two fleet workers to trip it Open, and assert via
#      `queue status --json --deep` that the pool demonstrably shrank (a
#      worker-dismiss event is journaled) and recovery closed the breaker
#      again -- the journaled evidence of shrink and regrow.
#
# Exits 77 (CTest SKIP_RETURN_CODE) where the drill cannot run.
set -u

DIVSIM="${1:-}"
if [[ -z "${DIVSIM}" || ! -x "${DIVSIM}" ]]; then
  echo "SKIP: divsim binary not provided or not executable" >&2
  exit 77
fi
if ! kill -0 $$ 2>/dev/null; then
  echo "SKIP: cannot deliver signals in this environment" >&2
  exit 77
fi
if [[ "$(uname -s)" != "Linux" ]]; then
  echo "SKIP: drill requires Linux /proc for worker discovery" >&2
  exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: drill needs python3 to interrogate queue status --json" >&2
  exit 77
fi

WORK="$(mktemp -d)" || exit 77
trap 'rm -rf "${WORK}"' EXIT
QDIR="${WORK}/queue"

# Slow-mixing graph so each replica takes real work and the coordinator can
# be killed mid-campaign; per-replica results are deterministic in
# (seed, replica, attempt), so an undisturbed run is the bit-identity oracle.
CONFIG=(--graph=path:1024 --k=9 --stop=consensus --max-steps=20000000
        --replicas=12 --seed=7)

# Unsupervised baseline of the SAME config: the queue's runner forces
# --supervise, which never changes healthy replica bits.
"${DIVSIM}" run "${CONFIG[@]}" --checkpoint-dir "${WORK}/baseline" \
    > "${WORK}/baseline.out" 2>&1
baseline_rc=$?
if [[ ${baseline_rc} -ne 0 ]]; then
  echo "FAIL: unsupervised baseline exited ${baseline_rc}" >&2
  cat "${WORK}/baseline.out" >&2
  exit 1
fi
"${DIVSIM}" journal --dir "${WORK}/baseline" \
    | grep '^replica ' > "${WORK}/baseline.records"

# ---------------------------------------------------------------------------
# Phase 1: SIGKILL the coordinator mid-campaign; a second coordinator must
# requeue the expired lease, resume from the checkpoint, and reproduce the
# baseline bit for bit.

"${DIVSIM}" queue submit --dir "${QDIR}" "${CONFIG[@]}" \
    > "${WORK}/submit1.out" 2>&1 || { cat "${WORK}/submit1.out" >&2; exit 1; }
"${DIVSIM}" queue submit --dir "${QDIR}" "${CONFIG[@]}" --seed=8 \
    > "${WORK}/submit2.out" 2>&1 || { cat "${WORK}/submit2.out" >&2; exit 1; }
# Dedup guard: resubmitting campaign 1's exact config must not queue twice.
"${DIVSIM}" queue submit --dir "${QDIR}" "${CONFIG[@]}" \
    > "${WORK}/submit3.out" 2>&1
if ! grep -q 'duplicate of campaign 1' "${WORK}/submit3.out"; then
  echo "FAIL: duplicate submit was not deduplicated" >&2
  cat "${WORK}/submit3.out" >&2
  exit 1
fi

"${DIVSIM}" queue run --dir "${QDIR}" --lease-ms 2000 \
    > "${WORK}/coord1.out" 2>&1 &
coord_pid=$!

# Wait for campaign 1 to make real progress, then kill at an arbitrary
# instant (the extra jittered sleep lands the SIGKILL anywhere in an append,
# a renewal, or a replica boundary).
progress=0
for _ in $(seq 1 1200); do
  if ! kill -0 "${coord_pid}" 2>/dev/null; then
    break
  fi
  if [[ -r "${QDIR}/campaigns/1/results.journal" ]]; then
    progress=$("${DIVSIM}" journal --dir "${QDIR}/campaigns/1" 2>/dev/null \
        | grep -c '^replica ' || true)
    [[ "${progress}" -ge 3 ]] && break
  fi
  sleep 0.1
done
if ! kill -0 "${coord_pid}" 2>/dev/null; then
  echo "SKIP: coordinator finished before it could be killed" >&2
  wait "${coord_pid}"
  cat "${WORK}/coord1.out" >&2
  exit 77
fi
sleep "0.$((RANDOM % 9))"
kill -KILL "${coord_pid}" 2>/dev/null
wait "${coord_pid}" 2>/dev/null
echo "SIGKILLed coordinator after ${progress} journaled replicas" >&2

# The queue journal must replay no matter where the kill landed.  A torn
# tail (exit 4) is a legal crash artifact; anything else is not.
"${DIVSIM}" queue status --dir "${QDIR}" --json > "${WORK}/status1.json"
status_rc=$?
if [[ ${status_rc} -ne 0 && ${status_rc} -ne 4 ]]; then
  echo "FAIL: queue status exited ${status_rc} after the kill" >&2
  exit 1
fi
python3 - "${WORK}/status1.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
phases = {c["id"]: c["phase"] for c in doc["campaigns"]}
assert phases.get(1) in ("leased", "running"), \
    f"campaign 1 should be mid-flight under the dead lease: {phases}"
assert phases.get(2) == "queued", f"campaign 2 should still be queued: {phases}"
EOF

# A second coordinator must wait out the dead lease, requeue, resume from
# the checkpoint, and drive both campaigns to completion.
"${DIVSIM}" queue run --dir "${QDIR}" --lease-ms 2000 \
    > "${WORK}/coord2.out" 2>&1
coord2_rc=$?
if [[ ${coord2_rc} -ne 0 ]]; then
  echo "FAIL: second coordinator exited ${coord2_rc} (want 0)" >&2
  cat "${WORK}/coord2.out" >&2
  exit 1
fi

"${DIVSIM}" queue status --dir "${QDIR}" --json --deep > "${WORK}/status2.json"
if [[ $? -ne 0 ]]; then
  echo "FAIL: queue status failed after the second coordinator" >&2
  exit 1
fi
python3 - "${WORK}/status2.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
assert not doc["torn"], "second coordinator left a torn queue journal"
by_id = {c["id"]: c for c in doc["campaigns"]}
assert by_id[1]["phase"] == "complete", f"campaign 1: {by_id[1]}"
assert by_id[2]["phase"] == "complete", f"campaign 2: {by_id[2]}"
assert by_id[1]["requeues"] >= 1, \
    f"the killed coordinator's lease was never requeued: {by_id[1]}"
assert by_id[1]["checkpoint"]["finished_replicas"] == 12, f"{by_id[1]}"
EOF

# Bit-identity: the interrupted-and-resumed campaign must reproduce the
# undisturbed baseline exactly.
"${DIVSIM}" journal --dir "${QDIR}/campaigns/1" \
    | grep '^replica ' > "${WORK}/resumed.records"
if ! diff -u "${WORK}/baseline.records" "${WORK}/resumed.records"; then
  echo "FAIL: resumed campaign diverged from the baseline" >&2
  exit 1
fi
echo "phase 1 OK: lease requeued, campaign resumed, 12/12 replicas" \
     "bit-identical to the baseline" >&2

# ---------------------------------------------------------------------------
# Phase 2: trip the breaker with SIGKILLed workers and demand journaled
# evidence of the pool shrinking (worker-dismiss) and recovering (close).

workers_of() {
  local parent="$1" pid
  for pid in /proc/[0-9]*; do
    pid="${pid#/proc/}"
    [[ -r "/proc/${pid}/stat" ]] || continue
    local stat ppid
    stat="$(cat "/proc/${pid}/stat" 2>/dev/null)" || continue
    ppid="$(awk '{print $2}' <<< "${stat##*) }")"
    if [[ "${ppid}" == "${parent}" ]]; then
      echo "${pid}"
    fi
  done
}

BQDIR="${WORK}/breaker-queue"
"${DIVSIM}" queue submit --dir "${BQDIR}" "${CONFIG[@]}" --replicas=24 \
    --isolation=process --workers=6 --retries=6 --min-success=0.3 \
    --breaker-failures=2 --breaker-window-ms=20000 \
    --breaker-cooldown-ms=1000 \
    --suspect-after-ms=30000 --dead-after-ms=60000 \
    > "${WORK}/bsubmit.out" 2>&1 || { cat "${WORK}/bsubmit.out" >&2; exit 1; }

"${DIVSIM}" queue run --dir "${BQDIR}" --no-wait \
    > "${WORK}/bcoord.out" 2>&1 &
bcoord_pid=$!

# The coordinator runs the campaign in-process, so the fleet workers are its
# direct children.  Kill two in quick succession: past --breaker-failures=2
# the breaker opens and the pool must shrink below the 6-worker target.
killed=0
for _ in $(seq 1 600); do
  if ! kill -0 "${bcoord_pid}" 2>/dev/null; then
    break
  fi
  mapfile -t workers < <(workers_of "${bcoord_pid}")
  if [[ "${#workers[@]}" -ge 4 && ${killed} -eq 0 ]]; then
    kill -KILL "${workers[0]}" 2>/dev/null && killed=1
    kill -KILL "${workers[1]}" 2>/dev/null && killed=2
    break
  fi
  sleep 0.05
done
if [[ ${killed} -lt 2 ]]; then
  wait "${bcoord_pid}"
  echo "SKIP: campaign finished before two workers could be killed" >&2
  cat "${WORK}/bcoord.out" >&2
  exit 77
fi
echo "SIGKILLed 2 fleet workers to trip the breaker" >&2

wait "${bcoord_pid}"
bcoord_rc=$?
if [[ ${bcoord_rc} -ne 0 ]]; then
  echo "FAIL: breaker coordinator exited ${bcoord_rc} (want 0:" \
       "retries absorb the worker kills)" >&2
  cat "${WORK}/bcoord.out" >&2
  exit 1
fi

"${DIVSIM}" queue status --dir "${BQDIR}" --json --deep \
    > "${WORK}/bstatus.json" || exit 1
python3 - "${WORK}/bstatus.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
camp = doc["campaigns"][0]
assert camp["phase"] in ("complete", "degraded"), f"campaign: {camp}"
cp = camp["checkpoint"]
assert cp["breaker_opens"] >= 1, \
    f"two worker kills never opened the breaker: {cp}"
assert cp["worker_dismissals"] >= 1, \
    f"the Open breaker never shrank the pool (no worker-dismiss): {cp}"
assert cp["breaker_closes"] >= 1, \
    f"the breaker never closed again (no regrow evidence): {cp}"
EOF
echo "phase 2 OK: breaker opened, pool shrank (worker-dismiss journaled)," \
     "and recovery closed it again" >&2

echo "OK: queue.journal replayed after an arbitrary-point coordinator kill," \
     "the interrupted campaign resumed bit-identically, and breaker-driven" \
     "pool sizing left its full journaled trail"
exit 0
