#!/usr/bin/env bash
# Adaptive-deadline chaos drill, two phases:
#
#   1. Run a process-isolated campaign under --deadline-ms auto, wait for the
#      estimator's confidence gate to open (a deadline-adapt event lands in
#      the telemetry), then SIGSTOP one worker across the learned deadline
#      boundary and SIGCONT it.  The hostage replica must be deadline-killed
#      and quarantined (exit 5, degraded), the kill must cite the LEARNED
#      deadline and be visible in `journal --json`, and every healthy replica
#      must be bit-identical to an unsupervised baseline -- zero healthy
#      quarantines.
#   2. SIGKILL the campaign parent mid-flight, then --resume.  The resumed
#      session must warm its estimator from calibration.journal, finish
#      cleanly (exit 0), and the merged journal must match the baseline bit
#      for bit.
#
# Exits 77 (CTest SKIP_RETURN_CODE) where the drill cannot run.
set -u

DIVSIM="${1:-}"
if [[ -z "${DIVSIM}" || ! -x "${DIVSIM}" ]]; then
  echo "SKIP: divsim binary not provided or not executable" >&2
  exit 77
fi
if ! kill -0 $$ 2>/dev/null; then
  echo "SKIP: cannot deliver signals in this environment" >&2
  exit 77
fi
if [[ "$(uname -s)" != "Linux" ]]; then
  echo "SKIP: drill requires Linux /proc for worker discovery" >&2
  exit 77
fi
if ! command -v python3 >/dev/null 2>&1; then
  echo "SKIP: drill needs python3 to interrogate journal --json" >&2
  exit 77
fi

WORK="$(mktemp -d)" || exit 77
trap 'rm -rf "${WORK}"' EXIT

# Slow-mixing graph so each replica takes a few hundred ms of real work; the
# per-replica results are deterministic in (seed, replica, attempt), so the
# unsupervised baseline is the bit-identity oracle for every supervised run.
GRAPH=(--graph path:1024 --k 9 --stop consensus --max-steps 20000000
       --replicas 20 --seed 7)
# Liveness thresholds far beyond any sleep below: ONLY the adaptive deadline
# may kill anything in this drill.
ADAPTIVE=(--isolation process --workers 3 --deadline-ms auto
          --deadline-quantile 0.9 --deadline-safety 4
          --deadline-min-samples 4 --retries 0 --min-success 0.5
          --suspect-after-ms 30000 --dead-after-ms 60000)

workers_of() {
  local parent="$1" pid
  for pid in /proc/[0-9]*; do
    pid="${pid#/proc/}"
    [[ -r "/proc/${pid}/stat" ]] || continue
    local stat ppid
    stat="$(cat "/proc/${pid}/stat" 2>/dev/null)" || continue
    ppid="$(awk '{print $2}' <<< "${stat##*) }")"
    if [[ "${ppid}" == "${parent}" ]]; then
      echo "${pid}"
    fi
  done
}

# Unsupervised baseline: the ground truth every healthy replica must match.
"${DIVSIM}" run "${GRAPH[@]}" --checkpoint-dir "${WORK}/baseline" \
    > "${WORK}/baseline.out" 2>&1
baseline_rc=$?
if [[ ${baseline_rc} -ne 0 ]]; then
  echo "FAIL: unsupervised baseline exited ${baseline_rc}" >&2
  cat "${WORK}/baseline.out" >&2
  exit 1
fi
"${DIVSIM}" journal --dir "${WORK}/baseline" \
    | grep '^replica ' > "${WORK}/baseline.records"

# ---------------------------------------------------------------------------
# Phase 1: SIGSTOP a worker across the learned-deadline boundary.

"${DIVSIM}" run "${GRAPH[@]}" "${ADAPTIVE[@]}" \
    --checkpoint-dir "${WORK}/hostage" \
    --metrics-out "${WORK}/hostage.jsonl" \
    > "${WORK}/hostage.out" 2>&1 &
victim_pid=$!

# Wait for the confidence gate: the first deadline-adapt event carries the
# armed deadline ("adaptive deadline now <N>ms ...").
learned_ms=""
for _ in $(seq 1 1200); do
  if ! kill -0 "${victim_pid}" 2>/dev/null; then
    break
  fi
  if [[ -r "${WORK}/hostage.jsonl" ]]; then
    learned_ms=$(sed -n 's/.*adaptive deadline now \([0-9]*\)ms.*/\1/p' \
        "${WORK}/hostage.jsonl" | tail -1)
    [[ -n "${learned_ms}" ]] && break
  fi
  sleep 0.1
done
if [[ -z "${learned_ms}" ]]; then
  wait "${victim_pid}"
  echo "SKIP: campaign finished before the confidence gate opened" >&2
  cat "${WORK}/hostage.out" >&2
  exit 77
fi
echo "estimator confident: learned deadline ${learned_ms}ms" >&2

# Take a worker hostage.  The parent keeps counting the hostage's in-flight
# attempt against the learned deadline while it is stopped.
hostage=""
for _ in $(seq 1 200); do
  if ! kill -0 "${victim_pid}" 2>/dev/null; then
    break
  fi
  mapfile -t workers < <(workers_of "${victim_pid}")
  if [[ "${#workers[@]}" -ge 1 ]]; then
    hostage="${workers[0]}"
    kill -STOP "${hostage}" 2>/dev/null && break
    hostage=""
  fi
  sleep 0.05
done
if [[ -z "${hostage}" ]]; then
  wait "${victim_pid}"
  echo "SKIP: campaign finished before a worker could be stopped" >&2
  exit 77
fi
echo "SIGSTOPped worker ${hostage}" >&2

# Sleep past the armed deadline (it rearms with fresh samples, so leave 2x
# headroom), then SIGCONT: the pending cooperative-cancel signal drains the
# hostage attempt, which --retries 0 turns into a quarantine.
sleep "$(( (2 * learned_ms) / 1000 + 3 ))"
kill -CONT "${hostage}" 2>/dev/null
echo "SIGCONTed worker ${hostage}" >&2

wait "${victim_pid}"
victim_rc=$?
if [[ ${victim_rc} -ne 5 ]]; then
  echo "FAIL: hostage campaign exited ${victim_rc} (want 5 degraded)" >&2
  cat "${WORK}/hostage.out" >&2
  exit 1
fi

"${DIVSIM}" journal --dir "${WORK}/hostage" > "${WORK}/hostage.journal"
grep '^replica ' "${WORK}/hostage.journal" | grep -v 'QUARANTINED' \
    > "${WORK}/hostage.records"
quarantined=$(grep -c 'QUARANTINED' "${WORK}/hostage.journal")
completed=$(wc -l < "${WORK}/hostage.records")

# Exactly the hostage replica may be quarantined: one SIGSTOP, one victim,
# zero healthy replicas sacrificed to the learned deadline.
if [[ "${quarantined}" -ne 1 ]]; then
  echo "FAIL: ${quarantined} quarantined (want exactly 1: the hostage)" >&2
  cat "${WORK}/hostage.out" >&2
  exit 1
fi
if [[ $((completed + quarantined)) -ne 20 ]]; then
  echo "FAIL: ${completed} completed + ${quarantined} quarantined != 20" >&2
  exit 1
fi
# Every completed replica is bit-identical to the unsupervised baseline.
if ! grep -F -x -f "${WORK}/baseline.records" "${WORK}/hostage.records" \
    | diff -u - "${WORK}/hostage.records"; then
  echo "FAIL: a healthy hostage-run replica diverged from the baseline" >&2
  exit 1
fi
# The kill decision is explainable after the fact: journal --json carries
# the adapt event and a deadline kill citing the LEARNED deadline.
"${DIVSIM}" journal --dir "${WORK}/hostage" --json \
    > "${WORK}/hostage.json"
python3 - "${WORK}/hostage.json" <<'EOF' || exit 1
import json, sys
doc = json.load(open(sys.argv[1]))
events = doc["supervision"]
kinds = [e["kind"] for e in events]
assert "deadline-adapt" in kinds, f"no deadline-adapt event in {kinds}"
kills = [e for e in events if e["kind"] == "deadline-kill"]
assert kills, f"no deadline-kill event in {kinds}"
assert any("learned deadline" in e.get("detail", "") for e in kills), \
    f"kill does not cite the learned deadline: {kills}"
EOF
echo "phase 1 OK: hostage quarantined, ${completed}/20 healthy replicas" \
     "bit-identical, kill journaled with learned deadline" >&2

# ---------------------------------------------------------------------------
# Phase 2: SIGKILL the parent mid-campaign, resume, demand bit-identity and
# a warm calibration start.

"${DIVSIM}" run "${GRAPH[@]}" "${ADAPTIVE[@]}" \
    --checkpoint-dir "${WORK}/resume" \
    > "${WORK}/resume1.out" 2>&1 &
parent_pid=$!

progress=0
for _ in $(seq 1 1200); do
  if ! kill -0 "${parent_pid}" 2>/dev/null; then
    break
  fi
  if [[ -r "${WORK}/resume/results.journal" ]]; then
    progress=$("${DIVSIM}" journal --dir "${WORK}/resume" 2>/dev/null \
        | grep -c '^replica ' || true)
    [[ "${progress}" -ge 3 ]] && break
  fi
  sleep 0.1
done
if ! kill -0 "${parent_pid}" 2>/dev/null; then
  echo "SKIP: campaign finished before the parent could be killed" >&2
  wait "${parent_pid}"
  exit 77
fi
kill -KILL "${parent_pid}" 2>/dev/null
wait "${parent_pid}" 2>/dev/null
echo "SIGKILLed campaign parent after ${progress} journaled replicas" >&2
# Orphaned workers die on their broken result pipe; give them a beat.
sleep 1

if [[ ! -s "${WORK}/resume/calibration.journal" ]]; then
  echo "FAIL: no calibration.journal survived the parent SIGKILL" >&2
  exit 1
fi

"${DIVSIM}" run "${GRAPH[@]}" "${ADAPTIVE[@]}" \
    --checkpoint-dir "${WORK}/resume" --resume \
    > "${WORK}/resume2.out" 2>&1
resume_rc=$?
if [[ ${resume_rc} -ne 0 ]]; then
  echo "FAIL: resumed campaign exited ${resume_rc} (want 0)" >&2
  cat "${WORK}/resume2.out" >&2
  exit 1
fi
if ! grep -q 'calibration: .* recovered' "${WORK}/resume2.out"; then
  echo "FAIL: resume did not warm from calibration.journal" >&2
  cat "${WORK}/resume2.out" >&2
  exit 1
fi
"${DIVSIM}" journal --dir "${WORK}/resume" \
    | grep '^replica ' > "${WORK}/resume.records"
if ! diff -u "${WORK}/baseline.records" "${WORK}/resume.records"; then
  echo "FAIL: resumed campaign diverged from the baseline" >&2
  exit 1
fi

echo "OK: hostage killed at the learned deadline with zero healthy" \
     "quarantines; SIGKILL+resume reproduced the baseline bit for bit" \
     "with a warm calibration start"
exit 0
