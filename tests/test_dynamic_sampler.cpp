#include "rng/dynamic_weighted_sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace divlib {
namespace {

TEST(DynamicWeightedSampler, RejectsInvalidWeights) {
  DynamicWeightedSampler sampler(4);
  EXPECT_THROW(sampler.set_weight(0, -1.0), std::invalid_argument);
  EXPECT_THROW(sampler.set_weight(0, std::nan("")), std::invalid_argument);
  EXPECT_THROW(sampler.set_weight(4, 1.0), std::out_of_range);
  EXPECT_THROW(sampler.weight(4), std::out_of_range);
  const std::vector<double> bad{1.0, -0.5};
  EXPECT_THROW(DynamicWeightedSampler(std::span<const double>(bad)),
               std::invalid_argument);
}

TEST(DynamicWeightedSampler, ZeroTotalCannotSample) {
  DynamicWeightedSampler sampler(3);
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 0.0);
  Rng rng(1);
  EXPECT_THROW(sampler.sample(rng), std::logic_error);
  // Raise one weight, then remove it again: back to unsampleable.
  sampler.set_weight(1, 2.0);
  EXPECT_EQ(sampler.sample(rng), 1u);
  sampler.set_weight(1, 0.0);
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 0.0);
  EXPECT_THROW(sampler.sample(rng), std::logic_error);
}

TEST(DynamicWeightedSampler, TracksWeightsThroughUpdates) {
  const std::vector<double> initial{1.0, 2.0, 3.0};
  DynamicWeightedSampler sampler{std::span<const double>(initial)};
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 6.0);
  sampler.set_weight(0, 4.0);
  sampler.set_weight(2, 0.0);
  EXPECT_DOUBLE_EQ(sampler.weight(0), 4.0);
  EXPECT_DOUBLE_EQ(sampler.weight(1), 2.0);
  EXPECT_DOUBLE_EQ(sampler.weight(2), 0.0);
  EXPECT_DOUBLE_EQ(sampler.total_weight(), 6.0);
}

TEST(DynamicWeightedSampler, ZeroWeightEntriesNeverSampled) {
  DynamicWeightedSampler sampler(5);
  sampler.set_weight(1, 1.0);
  sampler.set_weight(3, 2.0);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    const std::size_t index = sampler.sample(rng);
    ASSERT_TRUE(index == 1 || index == 3) << "sampled zero-weight " << index;
  }
}

TEST(DynamicWeightedSampler, EmpiricalFrequenciesMatchUpdatedWeights) {
  DynamicWeightedSampler sampler(4);
  sampler.set_weight(0, 5.0);   // later overwritten
  sampler.set_weight(0, 1.0);
  sampler.set_weight(1, 2.0);
  sampler.set_weight(2, 3.0);
  sampler.set_weight(3, 4.0);
  Rng rng(3);
  constexpr int kSamples = 200000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[sampler.sample(rng)];
  }
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double expected = (static_cast<double>(i) + 1.0) / 10.0;
    EXPECT_NEAR(static_cast<double>(counts[i]) / kSamples, expected, 0.01)
        << "index " << i;
  }
}

TEST(DynamicWeightedSampler, DeterministicStreamReplay) {
  // Identical operation sequences + identical seeds => identical samples.
  const auto drive = [](std::uint64_t seed) {
    DynamicWeightedSampler sampler(16);
    Rng rng(seed);
    std::vector<std::size_t> stream;
    for (int round = 0; round < 5000; ++round) {
      sampler.set_weight(static_cast<std::size_t>(round % 16),
                         static_cast<double>(round % 7) + 0.25);
      stream.push_back(sampler.sample(rng));
    }
    return stream;
  };
  EXPECT_EQ(drive(42), drive(42));
  EXPECT_NE(drive(42), drive(43));
}

TEST(DynamicWeightedSampler, RebuildPreservesDistribution) {
  DynamicWeightedSampler sampler(8);
  Rng update_rng(7);
  // Hammer the tree with random updates, then verify the rebuilt tree agrees
  // with the incrementally maintained one.
  for (int i = 0; i < 100000; ++i) {
    sampler.set_weight(static_cast<std::size_t>(update_rng.uniform_below(8)),
                       update_rng.uniform01());
  }
  std::vector<double> weights;
  double exact_total = 0.0;
  for (std::size_t i = 0; i < sampler.size(); ++i) {
    weights.push_back(sampler.weight(i));
    exact_total += sampler.weight(i);
  }
  EXPECT_NEAR(sampler.total_weight(), exact_total, 1e-9 * exact_total);
  sampler.rebuild();
  EXPECT_NEAR(sampler.total_weight(), exact_total, 1e-12 * exact_total);
  for (std::size_t i = 0; i < sampler.size(); ++i) {
    EXPECT_DOUBLE_EQ(sampler.weight(i), weights[i]);
  }
}

TEST(DynamicWeightedSampler, SingleCategoryAndSizeAccessors) {
  DynamicWeightedSampler sampler(1);
  EXPECT_EQ(sampler.size(), 1u);
  EXPECT_FALSE(sampler.empty());
  EXPECT_TRUE(DynamicWeightedSampler().empty());
  sampler.set_weight(0, 0.5);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(sampler.sample(rng), 0u);
  }
}

TEST(DynamicWeightedSampler, SkewedWeightsRarelyHitTinyCategory) {
  DynamicWeightedSampler sampler(2);
  sampler.set_weight(0, 1e-9);
  sampler.set_weight(1, 1.0);
  Rng rng(13);
  int tiny_hits = 0;
  for (int i = 0; i < 100000; ++i) {
    tiny_hits += sampler.sample(rng) == 0;
  }
  EXPECT_LT(tiny_hits, 5);
}

}  // namespace
}  // namespace divlib
