#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"
#include "spectral/dense_matrix.hpp"
#include "spectral/jacobi.hpp"
#include "spectral/lambda.hpp"
#include "spectral/power_iteration.hpp"

namespace divlib {
namespace {

TEST(DenseMatrix, StoresAndMultiplies) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 2.0;
  m.at(1, 0) = 3.0;
  m.at(1, 1) = 4.0;
  const auto y = m.multiply({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_FALSE(m.is_symmetric());
}

TEST(DenseMatrix, NormalizedAdjacencyIsSymmetric) {
  const Graph g = make_star(5);
  const DenseMatrix n = normalized_adjacency(g);
  EXPECT_TRUE(n.is_symmetric());
  // Star entries: 1/sqrt(4 * 1) = 0.5 between center and leaves.
  EXPECT_DOUBLE_EQ(n.at(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(n.at(1, 2), 0.0);
}

TEST(DenseMatrix, TransitionMatrixRowsSumToOne) {
  const Graph g = make_path(4);
  const DenseMatrix p = transition_matrix(g);
  for (std::size_t r = 0; r < 4; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < 4; ++c) {
      sum += p.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(DenseMatrix, RejectsIsolatedVertices) {
  const Graph g(3, {{0, 1}});
  EXPECT_THROW(normalized_adjacency(g), std::invalid_argument);
  EXPECT_THROW(transition_matrix(g), std::invalid_argument);
}

TEST(Jacobi, DiagonalMatrixEigenvalues) {
  DenseMatrix m(3, 3);
  m.at(0, 0) = 3.0;
  m.at(1, 1) = -1.0;
  m.at(2, 2) = 2.0;
  const auto eig = jacobi_eigenvalues(m);
  ASSERT_EQ(eig.size(), 3u);
  EXPECT_NEAR(eig[0], 3.0, 1e-12);
  EXPECT_NEAR(eig[1], 2.0, 1e-12);
  EXPECT_NEAR(eig[2], -1.0, 1e-12);
}

TEST(Jacobi, TwoByTwoKnownSpectrum) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 2.0;
  m.at(0, 1) = 1.0;
  m.at(1, 0) = 1.0;
  m.at(1, 1) = 2.0;
  const auto eig = jacobi_eigenvalues(m);
  EXPECT_NEAR(eig[0], 3.0, 1e-12);
  EXPECT_NEAR(eig[1], 1.0, 1e-12);
}

TEST(Jacobi, RejectsAsymmetricInput) {
  DenseMatrix m(2, 2);
  m.at(0, 1) = 1.0;
  EXPECT_THROW(jacobi_eigenvalues(m), std::invalid_argument);
}

TEST(Jacobi, WalkSpectrumTopEigenvalueIsOne) {
  for (const Graph& g : {make_complete(8), make_cycle(9), make_path(10)}) {
    const auto spectrum = walk_spectrum(g);
    EXPECT_NEAR(spectrum.front(), 1.0, 1e-9) << g.summary();
    for (const double value : spectrum) {
      EXPECT_LE(value, 1.0 + 1e-9);
      EXPECT_GE(value, -1.0 - 1e-9);
    }
  }
}

TEST(Lambda, CompleteGraphMatchesClosedForm) {
  for (const VertexId n : {4u, 8u, 16u, 32u}) {
    const Graph g = make_complete(n);
    EXPECT_NEAR(second_eigenvalue(g), lambda_complete(n), 1e-9) << n;
  }
}

TEST(Lambda, CycleMatchesCosineFormula) {
  // Odd cycle C_9: eigenvalues cos(2 pi j / 9); the largest in absolute value
  // below 1 is |cos(8 pi / 9)| = cos(pi / 9).
  const Graph g = make_cycle(9);
  EXPECT_NEAR(second_eigenvalue(g), std::cos(std::numbers::pi / 9.0), 1e-9);
  EXPECT_NEAR(lambda_cycle_exact(9), std::cos(std::numbers::pi / 9.0), 1e-12);
}

TEST(Lambda, BipartiteGraphsHaveLambdaOne) {
  // Even cycles and stars are bipartite: lambda_n = -1.
  EXPECT_NEAR(second_eigenvalue(make_cycle(8)), 1.0, 1e-9);
  EXPECT_NEAR(second_eigenvalue(make_star(10)), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(lambda_cycle_exact(8), 1.0);
}

TEST(Lambda, PathIsBipartiteSoMaxAbsIsOne) {
  // Paths are bipartite: lambda_n = -1 exactly, so max-abs lambda = 1.
  EXPECT_NEAR(second_eigenvalue(make_path(16)), 1.0, 1e-9);
}

TEST(Lambda, PathSecondEigenvalueApproachesOne) {
  // The paper's "lambda = 1 - O(1/n^2)" statement concerns the spectral gap;
  // lambda_2 of the path walk is cos(pi/(n-1)).
  const double l16 = walk_spectrum(make_path(16))[1];
  const double l64 = walk_spectrum(make_path(64))[1];
  EXPECT_LT(l16, l64);
  EXPECT_LT(l64, 1.0);
  EXPECT_GT(l64, 0.99);
  EXPECT_NEAR(l64, lambda_path_guide(64), 5e-3);
  EXPECT_NEAR(l16, std::cos(std::numbers::pi / 15.0), 1e-9);
}

TEST(Lambda, BarbellIsNearOne) {
  EXPECT_GT(second_eigenvalue(make_barbell(8)), 0.9);
}

TEST(PowerIteration, AgreesWithJacobiOnAssortedGraphs) {
  Rng rng(5);
  const Graph graphs[] = {
      make_complete(12),          make_cycle(15),
      make_path(20),              make_barbell(6),
      make_hypercube(4),          make_connected_gnp(60, 0.2, rng),
      make_connected_random_regular(50, 4, rng),
  };
  for (const Graph& g : graphs) {
    const double exact = second_eigenvalue(g);  // dense path (n small)
    const auto power = second_eigenvalue_power(g);
    EXPECT_TRUE(power.converged) << g.summary();
    EXPECT_NEAR(power.lambda, exact, 1e-5) << g.summary();
  }
}

TEST(PowerIteration, LargeGraphDispatch) {
  Rng rng(9);
  // Above the dense threshold, second_eigenvalue uses power iteration; the
  // value must still match the random-regular guide scale.
  const Graph g = make_connected_random_regular(1000, 8, rng);
  const double lambda = second_eigenvalue(g);
  EXPECT_GT(lambda, 0.1);
  EXPECT_LT(lambda, 2.5 * lambda_random_regular_guide(8));
}

TEST(Lambda, RandomRegularBelowGuide) {
  Rng rng(7);
  const Graph g = make_connected_random_regular(300, 16, rng);
  const double lambda = second_eigenvalue(g);
  // Friedman guide 2 sqrt(d-1)/d with generous slack.
  EXPECT_LT(lambda, 1.5 * lambda_random_regular_guide(16));
}

TEST(Lambda, GnpBelowGuide) {
  Rng rng(8);
  const VertexId n = 400;
  const double p = 0.1;
  const Graph g = make_connected_gnp(n, p, rng);
  EXPECT_LT(second_eigenvalue(g), 1.5 * lambda_gnp_guide(n, p));
}

TEST(Lambda, MargulisExpandsUniformly) {
  // The Margulis family is a deterministic expander: lambda stays bounded
  // away from 1 as m grows (unlike the torus on the same vertex set).
  const double l8 = second_eigenvalue(make_margulis(8));
  const double l16 = second_eigenvalue(make_margulis(16));
  EXPECT_LT(l8, 0.95);
  EXPECT_LT(l16, 0.95);
  // Contrast: the torus on the same vertex count degrades toward 1.
  EXPECT_GT(second_eigenvalue(make_grid(16, 16, true)), 0.96);
}

TEST(Lambda, GuideFormulasValidateArguments) {
  EXPECT_THROW(lambda_complete(1), std::invalid_argument);
  EXPECT_THROW(lambda_gnp_guide(0, 0.5), std::invalid_argument);
  EXPECT_THROW(lambda_path_guide(1), std::invalid_argument);
  EXPECT_THROW(lambda_cycle_exact(2), std::invalid_argument);
}

TEST(Lambda, TheoremConditionsOnExpanderVsPath) {
  // K_n has lambda = 1/(n-1): clearly applicable.  A random 16-regular graph
  // has lambda ~ 0.48 (Friedman), so lambda*k is only o(1) for much larger d;
  // at this size it sits in between.  The path fails decisively.
  const Graph complete = make_complete(256);
  const ExpanderCheck good = check_theorem_conditions(complete, 5);
  EXPECT_TRUE(good.applicable);
  EXPECT_LT(good.lambda_times_k, 0.1);

  const Graph path = make_path(256);
  const ExpanderCheck bad = check_theorem_conditions(path, 3);
  EXPECT_FALSE(bad.applicable);
  EXPECT_GT(bad.lambda_times_k, 1.0);

  // The star violates pi_min = Theta(1/n) (leaf mass 1/(2(n-1))) is fine,
  // but bipartiteness forces lambda = 1.
  const Graph star = make_star(64);
  EXPECT_FALSE(check_theorem_conditions(star, 3).applicable);
}

}  // namespace
}  // namespace divlib
