// Property-based (parameterized) suites: invariants that must hold for every
// process on every graph family.
//
//   P1. Opinions never leave the initial range.
//   P2. The active range [min_active, max_active] never expands.
//   P3. Consensus states are absorbing.
//   P4. Aggregate bookkeeping (counts, masses, sums) matches a full rescan.
//   P5. The total weight martingale has empirically negligible drift
//       (Lemma 3) for DIV: S(t) for the edge process, Z(t) for the vertex
//       process, on irregular graphs too.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <tuple>

#include "core/best_of_three.hpp"
#include "core/best_of_two.hpp"
#include "core/div_process.hpp"
#include "core/faulty_process.hpp"
#include "core/push_voting.hpp"
#include "core/step_size.hpp"
#include "core/load_balancing.hpp"
#include "core/median_voting.hpp"
#include "core/pull_voting.hpp"
#include "engine/initial_config.hpp"
#include "engine/montecarlo.hpp"
#include "graph/generators.hpp"
#include "graph/random_graphs.hpp"

namespace divlib {
namespace {

enum class ProcessKind {
  kDivVertex,
  kDivEdge,
  kPullVertex,
  kPullEdge,
  kPushVertex,
  kPushEdge,
  kMedian,
  kLoadBalance,
  kBestOfTwo,
  kBestOfThree,
  kSteppedTwo,   // clamped increment of size 2 (DIV generalization)
  kFaultyDiv,    // DIV behind 30% message loss
};

std::string process_kind_name(ProcessKind kind) {
  switch (kind) {
    case ProcessKind::kDivVertex:
      return "DivVertex";
    case ProcessKind::kDivEdge:
      return "DivEdge";
    case ProcessKind::kPullVertex:
      return "PullVertex";
    case ProcessKind::kPullEdge:
      return "PullEdge";
    case ProcessKind::kPushVertex:
      return "PushVertex";
    case ProcessKind::kPushEdge:
      return "PushEdge";
    case ProcessKind::kMedian:
      return "Median";
    case ProcessKind::kLoadBalance:
      return "LoadBalance";
    case ProcessKind::kBestOfTwo:
      return "BestOfTwo";
    case ProcessKind::kBestOfThree:
      return "BestOfThree";
    case ProcessKind::kSteppedTwo:
      return "SteppedTwo";
    case ProcessKind::kFaultyDiv:
      return "FaultyDiv";
  }
  return "Unknown";
}

std::unique_ptr<Process> make_process(ProcessKind kind, const Graph& graph) {
  switch (kind) {
    case ProcessKind::kDivVertex:
      return std::make_unique<DivProcess>(graph, SelectionScheme::kVertex);
    case ProcessKind::kDivEdge:
      return std::make_unique<DivProcess>(graph, SelectionScheme::kEdge);
    case ProcessKind::kPullVertex:
      return std::make_unique<PullVoting>(graph, SelectionScheme::kVertex);
    case ProcessKind::kPullEdge:
      return std::make_unique<PullVoting>(graph, SelectionScheme::kEdge);
    case ProcessKind::kPushVertex:
      return std::make_unique<PushVoting>(graph, SelectionScheme::kVertex);
    case ProcessKind::kPushEdge:
      return std::make_unique<PushVoting>(graph, SelectionScheme::kEdge);
    case ProcessKind::kMedian:
      return std::make_unique<MedianVoting>(graph);
    case ProcessKind::kLoadBalance:
      return std::make_unique<LoadBalancing>(graph);
    case ProcessKind::kBestOfTwo:
      return std::make_unique<BestOfTwo>(graph);
    case ProcessKind::kBestOfThree:
      return std::make_unique<BestOfThree>(graph);
    case ProcessKind::kSteppedTwo:
      return std::make_unique<SteppedIncrementalProcess>(
          graph, SelectionScheme::kEdge, 2);
    case ProcessKind::kFaultyDiv:
      return std::make_unique<FaultyProcess>(
          std::make_unique<DivProcess>(graph, SelectionScheme::kEdge), 0.3);
  }
  return nullptr;
}

enum class GraphKind {
  kComplete,
  kCycle,
  kStar,
  kBarbell,
  kHypercube,
  kRandomRegular,
  kGnp,
};

std::string graph_kind_name(GraphKind kind) {
  switch (kind) {
    case GraphKind::kComplete:
      return "Complete";
    case GraphKind::kCycle:
      return "Cycle";
    case GraphKind::kStar:
      return "Star";
    case GraphKind::kBarbell:
      return "Barbell";
    case GraphKind::kHypercube:
      return "Hypercube";
    case GraphKind::kRandomRegular:
      return "RandomRegular";
    case GraphKind::kGnp:
      return "Gnp";
  }
  return "Unknown";
}

Graph make_graph(GraphKind kind) {
  Rng rng(0xfeedULL);
  switch (kind) {
    case GraphKind::kComplete:
      return make_complete(20);
    case GraphKind::kCycle:
      return make_cycle(24);
    case GraphKind::kStar:
      return make_star(20);
    case GraphKind::kBarbell:
      return make_barbell(10);
    case GraphKind::kHypercube:
      return make_hypercube(5);
    case GraphKind::kRandomRegular:
      return make_connected_random_regular(24, 5, rng);
    case GraphKind::kGnp:
      return make_connected_gnp(24, 0.3, rng);
  }
  return Graph();
}

using ProcessGraphParam = std::tuple<ProcessKind, GraphKind>;

class ProcessInvariants : public ::testing::TestWithParam<ProcessGraphParam> {};

TEST_P(ProcessInvariants, OpinionsStayInInitialRange) {
  const auto [process_kind, graph_kind] = GetParam();
  const Graph graph = make_graph(graph_kind);
  Rng rng(1);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 6, rng));
  const auto process = make_process(process_kind, graph);
  for (int step = 0; step < 5000; ++step) {
    process->step(state, rng);
    for (VertexId v = 0; v < graph.num_vertices(); ++v) {
      ASSERT_GE(state.opinion(v), 1);
      ASSERT_LE(state.opinion(v), 6);
    }
  }
}

TEST_P(ProcessInvariants, ActiveRangeNeverExpands) {
  const auto [process_kind, graph_kind] = GetParam();
  const Graph graph = make_graph(graph_kind);
  Rng rng(2);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 6, rng));
  const auto process = make_process(process_kind, graph);
  Opinion lo = state.min_active();
  Opinion hi = state.max_active();
  for (int step = 0; step < 5000; ++step) {
    process->step(state, rng);
    ASSERT_GE(state.min_active(), lo);
    ASSERT_LE(state.max_active(), hi);
    lo = state.min_active();
    hi = state.max_active();
  }
}

TEST_P(ProcessInvariants, ConsensusIsAbsorbing) {
  const auto [process_kind, graph_kind] = GetParam();
  const Graph graph = make_graph(graph_kind);
  OpinionState state(graph, std::vector<Opinion>(graph.num_vertices(), 4));
  const auto process = make_process(process_kind, graph);
  Rng rng(3);
  for (int step = 0; step < 500; ++step) {
    process->step(state, rng);
    ASSERT_TRUE(state.is_consensus());
    ASSERT_EQ(state.min_active(), 4);
  }
}

TEST_P(ProcessInvariants, AggregatesMatchFullRescan) {
  const auto [process_kind, graph_kind] = GetParam();
  const Graph graph = make_graph(graph_kind);
  Rng rng(4);
  OpinionState state(
      graph, uniform_random_opinions(graph.num_vertices(), 1, 5, rng));
  const auto process = make_process(process_kind, graph);
  for (int step = 0; step < 2000; ++step) {
    process->step(state, rng);
  }
  // Rescan everything from scratch.
  std::int64_t sum = 0;
  std::int64_t weighted = 0;
  Opinion lo = state.opinion(0);
  Opinion hi = state.opinion(0);
  std::vector<std::int64_t> counts(8, 0);
  std::vector<std::uint64_t> masses(8, 0);
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const Opinion o = state.opinion(v);
    sum += o;
    weighted += static_cast<std::int64_t>(graph.degree(v)) * o;
    lo = std::min(lo, o);
    hi = std::max(hi, o);
    ++counts[static_cast<std::size_t>(o)];
    masses[static_cast<std::size_t>(o)] += graph.degree(v);
  }
  EXPECT_EQ(state.sum(), sum);
  EXPECT_EQ(state.degree_weighted_sum(), weighted);
  EXPECT_EQ(state.min_active(), lo);
  EXPECT_EQ(state.max_active(), hi);
  int active = 0;
  for (Opinion value = 1; value <= 5; ++value) {
    EXPECT_EQ(state.count(value), counts[static_cast<std::size_t>(value)])
        << "value " << value;
    EXPECT_EQ(state.degree_mass(value), masses[static_cast<std::size_t>(value)])
        << "value " << value;
    active += counts[static_cast<std::size_t>(value)] > 0 ? 1 : 0;
  }
  EXPECT_EQ(state.num_active(), active);
}

INSTANTIATE_TEST_SUITE_P(
    AllProcessesAllGraphs, ProcessInvariants,
    ::testing::Combine(::testing::Values(ProcessKind::kDivVertex,
                                         ProcessKind::kDivEdge,
                                         ProcessKind::kPullVertex,
                                         ProcessKind::kPullEdge,
                                         ProcessKind::kPushVertex,
                                         ProcessKind::kPushEdge,
                                         ProcessKind::kMedian,
                                         ProcessKind::kLoadBalance,
                                         ProcessKind::kBestOfTwo,
                                         ProcessKind::kBestOfThree,
                                         ProcessKind::kSteppedTwo,
                                         ProcessKind::kFaultyDiv),
                       ::testing::Values(GraphKind::kComplete, GraphKind::kCycle,
                                         GraphKind::kStar, GraphKind::kBarbell,
                                         GraphKind::kHypercube,
                                         GraphKind::kRandomRegular,
                                         GraphKind::kGnp)),
    [](const ::testing::TestParamInfo<ProcessGraphParam>& info) {
      return process_kind_name(std::get<0>(info.param)) + "_" +
             graph_kind_name(std::get<1>(info.param));
    });

// --- Lemma 3: martingale drift of the DIV total weight ---------------------

class DivMartingale : public ::testing::TestWithParam<GraphKind> {};

TEST_P(DivMartingale, EdgeProcessSumHasNoDrift) {
  const Graph graph = make_graph(GetParam());
  constexpr int kReplicas = 400;
  constexpr int kSteps = 400;
  const auto deltas = run_replicas<double>(
      kReplicas,
      [&graph](std::size_t, Rng& rng) {
        OpinionState state(
            graph, uniform_random_opinions(graph.num_vertices(), 1, 7, rng));
        const double initial = static_cast<double>(state.sum());
        DivProcess process(graph, SelectionScheme::kEdge);
        for (int step = 0; step < kSteps; ++step) {
          process.step(state, rng);
        }
        return static_cast<double>(state.sum()) - initial;
      },
      {.master_seed = 21});
  const double mean_drift =
      std::accumulate(deltas.begin(), deltas.end(), 0.0) / kReplicas;
  // Each step changes S by at most 1; over kSteps steps the per-replica
  // stddev is at most sqrt(kSteps) = 20, so the mean over 400 replicas has
  // stddev <= 1.  Allow 4 sigma.
  EXPECT_NEAR(mean_drift, 0.0, 4.0);
}

TEST_P(DivMartingale, VertexProcessZHasNoDrift) {
  const Graph graph = make_graph(GetParam());
  constexpr int kReplicas = 400;
  constexpr int kSteps = 400;
  const auto deltas = run_replicas<double>(
      kReplicas,
      [&graph](std::size_t, Rng& rng) {
        OpinionState state(
            graph, uniform_random_opinions(graph.num_vertices(), 1, 7, rng));
        const double initial = state.z_total();
        DivProcess process(graph, SelectionScheme::kVertex);
        for (int step = 0; step < kSteps; ++step) {
          process.step(state, rng);
        }
        return state.z_total() - initial;
      },
      {.master_seed = 22});
  const double mean_drift =
      std::accumulate(deltas.begin(), deltas.end(), 0.0) / kReplicas;
  // |dZ| <= n * pi_max per step; for these graphs n*pi_max <= ~10 (star).
  // stddev of the mean <= 10 * sqrt(kSteps) / sqrt(kReplicas) = 10.
  EXPECT_NEAR(mean_drift, 0.0, 40.0);
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, DivMartingale,
    ::testing::Values(GraphKind::kComplete, GraphKind::kCycle, GraphKind::kStar,
                      GraphKind::kBarbell, GraphKind::kRandomRegular),
    [](const ::testing::TestParamInfo<GraphKind>& info) {
      return graph_kind_name(info.param);
    });

// Counter-check: the *plain* sum S(t) is NOT a martingale for the vertex
// process on a sufficiently irregular graph -- the drift is visible.  This
// guards against implementing the two schemes identically.
TEST(DivMartingaleContrast, VertexProcessSumDriftsOnStar) {
  const Graph graph = make_star(20);
  constexpr int kReplicas = 600;
  constexpr int kSteps = 800;
  const auto deltas = run_replicas<double>(
      kReplicas,
      [&graph](std::size_t, Rng& rng) {
        // Center at 9, leaves at 1: leaves each pull toward 9 at rate
        // ~1/n each step while the center can only lose 1 per step.
        std::vector<Opinion> opinions(20, 1);
        opinions[0] = 9;
        OpinionState state(graph, std::move(opinions));
        const double initial = static_cast<double>(state.sum());
        DivProcess process(graph, SelectionScheme::kVertex);
        for (int step = 0; step < kSteps; ++step) {
          process.step(state, rng);
        }
        return static_cast<double>(state.sum()) - initial;
      },
      {.master_seed = 23});
  const double mean_drift =
      std::accumulate(deltas.begin(), deltas.end(), 0.0) / kReplicas;
  EXPECT_GT(mean_drift, 5.0);
}

}  // namespace
}  // namespace divlib
