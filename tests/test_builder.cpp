#include "graph/builder.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace divlib {
namespace {

TEST(GraphBuilder, AddsEdgesOnce) {
  GraphBuilder builder(3);
  EXPECT_TRUE(builder.add_edge(0, 1));
  EXPECT_FALSE(builder.add_edge(0, 1));
  EXPECT_FALSE(builder.add_edge(1, 0));
  EXPECT_EQ(builder.num_edges(), 1u);
}

TEST(GraphBuilder, RejectsSelfLoopsAndRangeErrors) {
  GraphBuilder builder(3);
  EXPECT_THROW(builder.add_edge(1, 1), std::invalid_argument);
  EXPECT_THROW(builder.add_edge(0, 3), std::invalid_argument);
}

TEST(GraphBuilder, HasEdgeIsSymmetric) {
  GraphBuilder builder(4);
  builder.add_edge(2, 3);
  EXPECT_TRUE(builder.has_edge(2, 3));
  EXPECT_TRUE(builder.has_edge(3, 2));
  EXPECT_FALSE(builder.has_edge(0, 1));
  EXPECT_FALSE(builder.has_edge(2, 2));
  EXPECT_FALSE(builder.has_edge(2, 9));
}

TEST(GraphBuilder, BuildProducesEquivalentGraph) {
  GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(GraphBuilder, BuildIsRepeatable) {
  GraphBuilder builder(3);
  builder.add_edge(0, 1);
  const Graph first = builder.build();
  builder.add_edge(1, 2);
  const Graph second = builder.build();
  EXPECT_EQ(first.num_edges(), 1u);
  EXPECT_EQ(second.num_edges(), 2u);
}

TEST(GraphBuilder, EmptyBuildIsValid) {
  GraphBuilder builder(5);
  const Graph g = builder.build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_TRUE(g.has_isolated_vertices());
}

}  // namespace
}  // namespace divlib
