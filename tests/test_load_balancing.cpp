#include "core/load_balancing.hpp"

#include <gtest/gtest.h>

#include "engine/engine.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(LoadBalancing, ConservesTotalWeightExactly) {
  const Graph g = make_complete(10);
  Rng init_rng(1);
  OpinionState state(g, uniform_random_opinions(10, 1, 9, init_rng));
  const std::int64_t initial_sum = state.sum();
  LoadBalancing process(g);
  Rng rng(2);
  for (int step = 0; step < 20000; ++step) {
    process.step(state, rng);
    ASSERT_EQ(state.sum(), initial_sum);
  }
}

TEST(LoadBalancing, BalancedPairIsFixed) {
  const Graph g = make_complete(2);
  OpinionState state(g, {3, 3});
  LoadBalancing process(g);
  Rng rng(3);
  for (int step = 0; step < 100; ++step) {
    process.step(state, rng);
    EXPECT_EQ(state.opinion(0), 3);
    EXPECT_EQ(state.opinion(1), 3);
  }
}

TEST(LoadBalancing, SplitsUnevenPairs) {
  const Graph g = make_complete(2);
  OpinionState state(g, {1, 8});
  LoadBalancing process(g);
  Rng rng(4);
  process.step(state, rng);
  const Opinion a = state.opinion(0);
  const Opinion b = state.opinion(1);
  EXPECT_EQ(a + b, 9);
  EXPECT_LE(std::abs(a - b), 1);
}

TEST(LoadBalancing, ReachesThreeConsecutiveValues) {
  // [5]: w.h.p. at most three consecutive values around the average remain
  // after O(n log n + n log k) steps.
  const Graph g = make_complete(32);
  Rng init_rng(5);
  OpinionState state(g, uniform_random_opinions(32, 1, 16, init_rng));
  LoadBalancing process(g);
  Rng rng(6);
  for (int step = 0; step < 200000; ++step) {
    process.step(state, rng);
    if (state.max_active() - state.min_active() <= 2) {
      break;
    }
  }
  EXPECT_LE(state.max_active() - state.min_active(), 2);
  // The surviving values bracket the exact average.
  const double average = state.average();
  EXPECT_GE(average, state.min_active());
  EXPECT_LE(average, state.max_active());
}

TEST(LoadBalancing, NonIntegerAverageCannotReachConsensus) {
  // Sum 7 over 2 vertices: consensus would need equal values summing to 7.
  const Graph g = make_complete(2);
  OpinionState state(g, {3, 4});
  LoadBalancing process(g);
  Rng rng(7);
  for (int step = 0; step < 1000; ++step) {
    process.step(state, rng);
    EXPECT_FALSE(state.is_consensus());
    EXPECT_TRUE(state.is_two_adjacent());
  }
}

TEST(LoadBalancing, NegativeValuesRoundTowardMinusInfinity) {
  const Graph g = make_complete(2);
  OpinionState state(g, {-3, 0});
  LoadBalancing process(g);
  Rng rng(8);
  process.step(state, rng);
  // Total -3 splits as floor(-1.5), ceil(-1.5) = -2, -1.
  const Opinion a = state.opinion(0);
  const Opinion b = state.opinion(1);
  EXPECT_EQ(a + b, -3);
  EXPECT_EQ(std::min(a, b), -2);
  EXPECT_EQ(std::max(a, b), -1);
}

TEST(LoadBalancing, RejectsEdgelessGraph) {
  const Graph g(3, {});
  EXPECT_THROW(LoadBalancing{g}, std::invalid_argument);
}

TEST(LoadBalancing, NameIsStable) {
  const Graph g = make_cycle(3);
  EXPECT_EQ(LoadBalancing(g).name(), "loadbalance/edge");
}

}  // namespace
}  // namespace divlib
