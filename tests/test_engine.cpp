#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include "core/div_process.hpp"
#include "core/pull_voting.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(StopCondition, Names) {
  EXPECT_EQ(to_string(StopKind::kConsensus), "consensus");
  EXPECT_EQ(to_string(StopKind::kTwoAdjacent), "two-adjacent");
}

TEST(StopCondition, Satisfaction) {
  const Graph g = make_cycle(4);
  const OpinionState spread(g, {1, 2, 3, 4});
  EXPECT_FALSE(is_satisfied(StopKind::kConsensus, spread));
  EXPECT_FALSE(is_satisfied(StopKind::kTwoAdjacent, spread));
  const OpinionState adjacent(g, {2, 3, 2, 3});
  EXPECT_FALSE(is_satisfied(StopKind::kConsensus, adjacent));
  EXPECT_TRUE(is_satisfied(StopKind::kTwoAdjacent, adjacent));
  const OpinionState consensus(g, {2, 2, 2, 2});
  EXPECT_TRUE(is_satisfied(StopKind::kConsensus, consensus));
  EXPECT_TRUE(is_satisfied(StopKind::kTwoAdjacent, consensus));
}

TEST(Engine, ImmediateStopWhenAlreadySatisfied) {
  const Graph g = make_complete(4);
  OpinionState state(g, {3, 3, 3, 3});
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(1);
  const RunResult result = run(process, state, rng, {});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 0u);
  ASSERT_TRUE(result.winner.has_value());
  EXPECT_EQ(*result.winner, 3);
}

TEST(Engine, StepCapReportsIncomplete) {
  const Graph g = make_complete(16);
  Rng init_rng(2);
  OpinionState state(g, uniform_random_opinions(16, 1, 8, init_rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(3);
  RunOptions options;
  options.max_steps = 3;
  const RunResult result = run(process, state, rng, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.steps, 3u);
  EXPECT_FALSE(result.winner.has_value());
}

TEST(Engine, TwoAdjacentStopPrecedesConsensus) {
  const Graph g = make_complete(20);
  Rng init_rng(4);
  OpinionState state(g, uniform_random_opinions(20, 1, 6, init_rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(5);
  RunOptions options;
  options.stop = StopKind::kTwoAdjacent;
  options.max_steps = 10'000'000;
  const RunResult first = run(process, state, rng, options);
  ASSERT_TRUE(first.completed);
  EXPECT_LE(first.max_active - first.min_active, 1);

  // Continue the same state to consensus.
  options.stop = StopKind::kConsensus;
  const RunResult second = run(process, state, rng, options);
  ASSERT_TRUE(second.completed);
  ASSERT_TRUE(second.winner.has_value());
  EXPECT_GE(*second.winner, first.min_active);
  EXPECT_LE(*second.winner, first.max_active);
}

TEST(Engine, FinalAggregatesMatchState) {
  const Graph g = make_complete(10);
  Rng init_rng(6);
  OpinionState state(g, uniform_random_opinions(10, 1, 4, init_rng));
  PullVoting process(g, SelectionScheme::kEdge);
  Rng rng(7);
  RunOptions options;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_EQ(result.final_sum, state.sum());
  EXPECT_DOUBLE_EQ(result.final_z, state.z_total());
  EXPECT_EQ(result.min_active, state.min_active());
  EXPECT_EQ(result.num_active, state.num_active());
}

TEST(Engine, TraceRecordsStartAndEnd) {
  const Graph g = make_complete(12);
  Rng init_rng(8);
  OpinionState state(g, uniform_random_opinions(12, 1, 4, init_rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(9);
  RunOptions options;
  options.trace_stride = 50;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.samples().front().step, 0u);
  EXPECT_EQ(result.trace.samples().back().step, result.steps);
  // Samples are strictly increasing in step.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LT(result.trace.samples()[i - 1].step, result.trace.samples()[i].step);
  }
}

TEST(Engine, NoTraceWhenStrideZero) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 1, 1, 2, 2, 2, 2});
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(10);
  RunOptions options;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_FALSE(result.trace.enabled());
}

}  // namespace
}  // namespace divlib
