#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/div_process.hpp"
#include "core/pull_voting.hpp"
#include "engine/initial_config.hpp"
#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(StopCondition, Names) {
  EXPECT_EQ(to_string(StopKind::kConsensus), "consensus");
  EXPECT_EQ(to_string(StopKind::kTwoAdjacent), "two-adjacent");
}

TEST(StopCondition, Satisfaction) {
  const Graph g = make_cycle(4);
  const OpinionState spread(g, {1, 2, 3, 4});
  EXPECT_FALSE(is_satisfied(StopKind::kConsensus, spread));
  EXPECT_FALSE(is_satisfied(StopKind::kTwoAdjacent, spread));
  const OpinionState adjacent(g, {2, 3, 2, 3});
  EXPECT_FALSE(is_satisfied(StopKind::kConsensus, adjacent));
  EXPECT_TRUE(is_satisfied(StopKind::kTwoAdjacent, adjacent));
  const OpinionState consensus(g, {2, 2, 2, 2});
  EXPECT_TRUE(is_satisfied(StopKind::kConsensus, consensus));
  EXPECT_TRUE(is_satisfied(StopKind::kTwoAdjacent, consensus));
}

TEST(Engine, ImmediateStopWhenAlreadySatisfied) {
  const Graph g = make_complete(4);
  OpinionState state(g, {3, 3, 3, 3});
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(1);
  const RunResult result = run(process, state, rng, {});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.steps, 0u);
  ASSERT_TRUE(result.winner.has_value());
  EXPECT_EQ(*result.winner, 3);
}

TEST(Engine, StepCapReportsIncomplete) {
  const Graph g = make_complete(16);
  Rng init_rng(2);
  OpinionState state(g, uniform_random_opinions(16, 1, 8, init_rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(3);
  RunOptions options;
  options.max_steps = 3;
  const RunResult result = run(process, state, rng, options);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.steps, 3u);
  EXPECT_FALSE(result.winner.has_value());
}

TEST(Engine, TwoAdjacentStopPrecedesConsensus) {
  const Graph g = make_complete(20);
  Rng init_rng(4);
  OpinionState state(g, uniform_random_opinions(20, 1, 6, init_rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(5);
  RunOptions options;
  options.stop = StopKind::kTwoAdjacent;
  options.max_steps = 10'000'000;
  const RunResult first = run(process, state, rng, options);
  ASSERT_TRUE(first.completed);
  EXPECT_LE(first.max_active - first.min_active, 1);

  // Continue the same state to consensus.
  options.stop = StopKind::kConsensus;
  const RunResult second = run(process, state, rng, options);
  ASSERT_TRUE(second.completed);
  ASSERT_TRUE(second.winner.has_value());
  EXPECT_GE(*second.winner, first.min_active);
  EXPECT_LE(*second.winner, first.max_active);
}

TEST(Engine, FinalAggregatesMatchState) {
  const Graph g = make_complete(10);
  Rng init_rng(6);
  OpinionState state(g, uniform_random_opinions(10, 1, 4, init_rng));
  PullVoting process(g, SelectionScheme::kEdge);
  Rng rng(7);
  RunOptions options;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_EQ(result.final_sum, state.sum());
  EXPECT_DOUBLE_EQ(result.final_z, state.z_total());
  EXPECT_EQ(result.min_active, state.min_active());
  EXPECT_EQ(result.num_active, state.num_active());
}

TEST(Engine, TraceRecordsStartAndEnd) {
  const Graph g = make_complete(12);
  Rng init_rng(8);
  OpinionState state(g, uniform_random_opinions(12, 1, 4, init_rng));
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(9);
  RunOptions options;
  options.trace_stride = 50;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  ASSERT_TRUE(result.completed);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.samples().front().step, 0u);
  EXPECT_EQ(result.trace.samples().back().step, result.steps);
  // Samples are strictly increasing in step.
  for (std::size_t i = 1; i < result.trace.size(); ++i) {
    EXPECT_LT(result.trace.samples()[i - 1].step, result.trace.samples()[i].step);
  }
}

TEST(Engine, NoTraceWhenStrideZero) {
  const Graph g = make_complete(8);
  OpinionState state(g, {1, 1, 1, 1, 2, 2, 2, 2});
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(10);
  RunOptions options;
  options.max_steps = 1'000'000;
  const RunResult result = run(process, state, rng, options);
  EXPECT_TRUE(result.trace.empty());
  EXPECT_FALSE(result.trace.enabled());
}

// A process that throws midway through a run: exercises the watchdog's
// kFaulted classification and run_guarded's structured error capture.
class ExplodingProcess : public Process {
 public:
  explicit ExplodingProcess(std::uint64_t explode_after)
      : explode_after_(explode_after) {}
  void begin_run(const OpinionState&) override { ++begin_run_calls_; }
  void step(OpinionState&, Rng&) override {
    if (++steps_ > explode_after_) {
      throw std::runtime_error("simulated hardware fault");
    }
  }
  std::string name() const override { return "exploding"; }
  int begin_run_calls() const { return begin_run_calls_; }

 private:
  std::uint64_t explode_after_;
  std::uint64_t steps_ = 0;
  int begin_run_calls_ = 0;
};

TEST(Engine, RunStatusNames) {
  EXPECT_STREQ(to_string(RunStatus::kCompleted), "completed");
  EXPECT_STREQ(to_string(RunStatus::kCapped), "capped");
  EXPECT_STREQ(to_string(RunStatus::kFaulted), "faulted");
}

TEST(Engine, StatusClassifiesCompletedAndCapped) {
  const Graph g = make_complete(4);
  DivProcess process(g, SelectionScheme::kVertex);
  Rng rng(11);

  OpinionState done(g, {2, 2, 2, 2});
  const RunResult completed = run(process, done, rng, {});
  EXPECT_EQ(completed.status, RunStatus::kCompleted);
  EXPECT_TRUE(completed.completed);
  EXPECT_TRUE(completed.fault.empty());

  OpinionState split(g, {1, 1, 4, 4});
  RunOptions tight;
  tight.max_steps = 2;
  const RunResult capped = run(process, split, rng, tight);
  EXPECT_EQ(capped.status, RunStatus::kCapped);
  EXPECT_FALSE(capped.completed);
}

TEST(Engine, RunPropagatesProcessExceptions) {
  const Graph g = make_complete(4);
  OpinionState state(g, {1, 2, 3, 4});
  ExplodingProcess process(5);
  Rng rng(12);
  EXPECT_THROW(run(process, state, rng, {}), std::runtime_error);
}

TEST(Engine, RunGuardedCapturesFaults) {
  const Graph g = make_complete(4);
  OpinionState state(g, {1, 2, 3, 4});
  ExplodingProcess process(5);
  Rng rng(13);
  const RunResult result = run_guarded(process, state, rng, {});
  EXPECT_EQ(result.status, RunStatus::kFaulted);
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.fault, "simulated hardware fault");
  EXPECT_EQ(result.steps, 5u);  // progress up to the failure is reported
  EXPECT_FALSE(result.winner.has_value());
}

TEST(Engine, RunGuardedMatchesRunWhenHealthy) {
  const Graph g = make_complete(8);
  Rng init_rng(14);
  const auto initial = uniform_random_opinions(8, 1, 4, init_rng);
  DivProcess process(g, SelectionScheme::kVertex);
  OpinionState a(g, initial);
  OpinionState b(g, initial);
  Rng rng_a(15);
  Rng rng_b(15);
  const RunResult plain = run(process, a, rng_a, {});
  const RunResult guarded = run_guarded(process, b, rng_b, {});
  EXPECT_EQ(guarded.status, RunStatus::kCompleted);
  EXPECT_EQ(guarded.steps, plain.steps);
  EXPECT_EQ(guarded.winner, plain.winner);
  EXPECT_TRUE(guarded.fault.empty());
}

TEST(Engine, BeginRunFiresOncePerRun) {
  const Graph g = make_complete(4);
  ExplodingProcess process(1'000'000);
  Rng rng(16);
  RunOptions options;
  options.max_steps = 10;
  OpinionState state(g, {1, 2, 3, 4});
  (void)run(process, state, rng, options);
  (void)run(process, state, rng, options);
  (void)run_guarded(process, state, rng, options);
  EXPECT_EQ(process.begin_run_calls(), 3);
}

}  // namespace
}  // namespace divlib
