#include "core/opinion_state.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(OpinionState, InitialAggregates) {
  const Graph g = make_cycle(5);
  OpinionState state(g, {1, 2, 3, 2, 2});
  EXPECT_EQ(state.range_lo(), 1);
  EXPECT_EQ(state.range_hi(), 3);
  EXPECT_EQ(state.min_active(), 1);
  EXPECT_EQ(state.max_active(), 3);
  EXPECT_EQ(state.num_active(), 3);
  EXPECT_EQ(state.count(1), 1);
  EXPECT_EQ(state.count(2), 3);
  EXPECT_EQ(state.count(3), 1);
  EXPECT_EQ(state.count(0), 0);
  EXPECT_EQ(state.count(99), 0);
  EXPECT_EQ(state.sum(), 10);
  EXPECT_DOUBLE_EQ(state.average(), 2.0);
  EXPECT_FALSE(state.is_consensus());
  EXPECT_FALSE(state.is_two_adjacent());
}

TEST(OpinionState, RejectsSizeMismatchAndEmpty) {
  const Graph g = make_cycle(5);
  EXPECT_THROW(OpinionState(g, {1, 2}), std::invalid_argument);
  const Graph empty;
  EXPECT_THROW(OpinionState(empty, {}), std::invalid_argument);
}

TEST(OpinionState, RegularGraphWeightsCoincide) {
  // Remark 1: on regular graphs Z(t) = S(t).
  const Graph g = make_cycle(6);
  OpinionState state(g, {1, 5, 2, 4, 3, 3});
  EXPECT_DOUBLE_EQ(state.z_total(), static_cast<double>(state.sum()));
  EXPECT_DOUBLE_EQ(state.weighted_average(), state.average());
}

TEST(OpinionState, DegreeWeightedAggregatesOnStar) {
  // Star: center degree 4, leaves degree 1; 2m = 8.
  const Graph g = make_star(5);
  OpinionState state(g, {10, 0, 0, 0, 0});  // center holds 10
  // Z = n * pi-weighted sum = 5 * (4/8)*10 = 25; S = 10.
  EXPECT_EQ(state.sum(), 10);
  EXPECT_DOUBLE_EQ(state.z_total(), 25.0);
  EXPECT_EQ(state.degree_weighted_sum(), 40);
  EXPECT_DOUBLE_EQ(state.pi_mass(10), 0.5);
  EXPECT_DOUBLE_EQ(state.pi_mass(0), 0.5);
}

TEST(OpinionState, SetUpdatesAllAggregates) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 1, 3, 3});
  state.set(0, 2);
  EXPECT_EQ(state.count(1), 1);
  EXPECT_EQ(state.count(2), 1);
  EXPECT_EQ(state.sum(), 9);
  EXPECT_EQ(state.num_active(), 3);
  EXPECT_EQ(state.min_active(), 1);
  state.set(1, 2);
  EXPECT_EQ(state.count(1), 0);
  EXPECT_EQ(state.min_active(), 2);
  EXPECT_EQ(state.num_active(), 2);
  EXPECT_TRUE(state.is_two_adjacent());
}

TEST(OpinionState, SetToSameValueIsNoop) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 2, 2, 3});
  state.set(1, 2);
  EXPECT_EQ(state.count(2), 2);
  EXPECT_EQ(state.sum(), 8);
}

TEST(OpinionState, SetRejectsOutOfRangeValues) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 2, 2, 3});
  EXPECT_THROW(state.set(0, 0), std::out_of_range);
  EXPECT_THROW(state.set(0, 4), std::out_of_range);
}

TEST(OpinionState, MaxActiveRetreatsOverGaps) {
  const Graph g = make_cycle(5);
  OpinionState state(g, {1, 1, 1, 1, 5});
  EXPECT_EQ(state.max_active(), 5);
  EXPECT_EQ(state.num_active(), 2);
  state.set(4, 4);  // 5 vanishes; 4 becomes the max
  EXPECT_EQ(state.max_active(), 4);
  state.set(4, 1);  // direct jump (pull voting semantics)
  EXPECT_EQ(state.max_active(), 1);
  EXPECT_TRUE(state.is_consensus());
  EXPECT_EQ(state.num_active(), 1);
}

TEST(OpinionState, MinActiveAdvancesOverGaps) {
  const Graph g = make_cycle(5);
  OpinionState state(g, {1, 3, 3, 3, 5});
  state.set(0, 3);
  EXPECT_EQ(state.min_active(), 3);
  EXPECT_EQ(state.max_active(), 5);
}

TEST(OpinionState, ReappearingMiddleValueTracked) {
  // The paper notes intermediate values may vanish then reappear.
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 2, 3, 3});
  state.set(1, 3);  // 2 vanishes
  EXPECT_EQ(state.count(2), 0);
  EXPECT_EQ(state.num_active(), 2);
  state.set(2, 2);  // 2 reappears
  EXPECT_EQ(state.count(2), 1);
  EXPECT_EQ(state.num_active(), 3);
  EXPECT_EQ(state.min_active(), 1);
}

TEST(OpinionState, ConsensusDetection) {
  const Graph g = make_cycle(3);
  OpinionState state(g, {2, 2, 2});
  EXPECT_TRUE(state.is_consensus());
  EXPECT_TRUE(state.is_two_adjacent());
  EXPECT_EQ(state.min_active(), 2);
  EXPECT_EQ(state.max_active(), 2);
}

TEST(OpinionState, NegativeOpinionRangesWork) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {-2, -1, 0, 1});
  EXPECT_EQ(state.range_lo(), -2);
  EXPECT_EQ(state.sum(), -2);
  state.set(0, -1);
  EXPECT_EQ(state.min_active(), -1);
}

TEST(OpinionState, ExtremeMassProduct) {
  const Graph g = make_cycle(4);  // all degrees 2, 2m = 8
  OpinionState state(g, {1, 1, 2, 3});
  // pi(A_1) = 4/8, pi(A_3) = 2/8.
  EXPECT_DOUBLE_EQ(state.extreme_mass_product(), 0.5 * 0.25);
}

TEST(OpinionState, PiMassesSumToOne) {
  const Graph g = make_star(6);
  OpinionState state(g, {1, 2, 3, 1, 2, 3});
  double total = 0.0;
  for (Opinion i = state.range_lo(); i <= state.range_hi(); ++i) {
    total += state.pi_mass(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(OpinionState, WriteLogDisabledByDefault) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 2, 3, 4});
  EXPECT_FALSE(state.write_log_enabled());
  state.set(0, 2);
  EXPECT_TRUE(state.recent_writes().empty());
}

TEST(OpinionState, WriteLogRecordsOnlyActualChanges) {
  const Graph g = make_cycle(4);
  OpinionState state(g, {1, 2, 3, 4});
  state.enable_write_log();
  EXPECT_TRUE(state.write_log_enabled());
  state.set(0, 2);  // change
  state.set(1, 2);  // no-op: already 2
  state.set(3, 1);  // change
  ASSERT_EQ(state.recent_writes().size(), 2u);
  EXPECT_EQ(state.recent_writes()[0], 0u);
  EXPECT_EQ(state.recent_writes()[1], 3u);
  state.clear_write_log();
  EXPECT_TRUE(state.recent_writes().empty());
  state.set(2, 4);
  ASSERT_EQ(state.recent_writes().size(), 1u);
  EXPECT_EQ(state.recent_writes()[0], 2u);
}

}  // namespace
}  // namespace divlib
