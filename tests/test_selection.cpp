#include "core/selection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "graph/generators.hpp"

namespace divlib {
namespace {

TEST(Selection, SchemesHaveNames) {
  EXPECT_EQ(to_string(SelectionScheme::kVertex), "vertex");
  EXPECT_EQ(to_string(SelectionScheme::kEdge), "edge");
}

TEST(Selection, PairsAreAlwaysAdjacent) {
  const Graph g = make_barbell(4);
  Rng rng(1);
  for (const auto scheme : {SelectionScheme::kVertex, SelectionScheme::kEdge}) {
    for (int i = 0; i < 5000; ++i) {
      const SelectedPair pair = select_pair(g, scheme, rng);
      EXPECT_TRUE(g.has_edge(pair.updater, pair.observed));
      EXPECT_NE(pair.updater, pair.observed);
    }
  }
}

TEST(Selection, VertexSchemeUpdaterIsUniform) {
  // Star: vertex scheme picks the updater uniformly, so the center is the
  // updater with probability 1/n.
  const Graph g = make_star(5);
  Rng rng(2);
  constexpr int kSamples = 100000;
  int center_updates = 0;
  for (int i = 0; i < kSamples; ++i) {
    center_updates +=
        select_pair(g, SelectionScheme::kVertex, rng).updater == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(center_updates) / kSamples, 0.2, 0.01);
}

TEST(Selection, EdgeSchemeUpdaterIsDegreeBiased) {
  // Star with n=5: center degree 4 of 2m=8, so the center is the updater
  // with probability 1/2 under the edge scheme.
  const Graph g = make_star(5);
  Rng rng(3);
  constexpr int kSamples = 100000;
  int center_updates = 0;
  for (int i = 0; i < kSamples; ++i) {
    center_updates +=
        select_pair(g, SelectionScheme::kEdge, rng).updater == 0 ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(center_updates) / kSamples, 0.5, 0.01);
}

TEST(Selection, VertexSchemeMatchesEquationTwo) {
  // P(v chooses w) = 1/(n d(v)) on an irregular graph.
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  Rng rng(4);
  constexpr int kSamples = 400000;
  std::map<std::pair<VertexId, VertexId>, int> counts;
  for (int i = 0; i < kSamples; ++i) {
    const SelectedPair pair = select_pair(g, SelectionScheme::kVertex, rng);
    ++counts[{pair.updater, pair.observed}];
  }
  for (const auto& [pair, count] : counts) {
    const double expected = 1.0 / (4.0 * g.degree(pair.first));
    EXPECT_NEAR(static_cast<double>(count) / kSamples, expected, 0.005)
        << pair.first << "->" << pair.second;
  }
}

TEST(Selection, EdgeSchemeMatchesOneOverTwoM) {
  const Graph g(4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}});
  Rng rng(5);
  constexpr int kSamples = 400000;
  std::map<std::pair<VertexId, VertexId>, int> counts;
  for (int i = 0; i < kSamples; ++i) {
    const SelectedPair pair = select_pair(g, SelectionScheme::kEdge, rng);
    ++counts[{pair.updater, pair.observed}];
  }
  EXPECT_EQ(counts.size(), 8u);  // each edge in both orientations
  for (const auto& [pair, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / kSamples, 1.0 / 8.0, 0.005)
        << pair.first << "->" << pair.second;
  }
}

TEST(Selection, ValidationCatchesDegenerateGraphs) {
  const Graph empty;
  EXPECT_THROW(validate_for_selection(empty, SelectionScheme::kVertex),
               std::invalid_argument);
  const Graph edgeless(3, {});
  EXPECT_THROW(validate_for_selection(edgeless, SelectionScheme::kEdge),
               std::invalid_argument);
  const Graph isolated(3, {{0, 1}});
  EXPECT_THROW(validate_for_selection(isolated, SelectionScheme::kVertex),
               std::invalid_argument);
  // Edge scheme tolerates isolated vertices (they are simply never chosen).
  EXPECT_NO_THROW(validate_for_selection(isolated, SelectionScheme::kEdge));
}

}  // namespace
}  // namespace divlib
